//! An executable sequential CNN with real numerics and SGD training.
//!
//! This is the CPU-side counterpart of the paper's training iterations:
//! every convolution runs one of the three real strategies from
//! `gcnn-conv`, so a LeNet-5 built here trains end-to-end regardless of
//! which strategy (direct / unrolling / FFT) backs its layers — the
//! cross-strategy equivalence the paper's whole comparison rests on.

use crate::data::Dataset;
use gcnn_autotune::{SelectionSource, Substrate, Tuner, TuningCache};
use gcnn_conv::layers::{
    softmax_cross_entropy, FcLayer, PoolForward, PoolKind, PoolLayer, ReluLayer,
};
use gcnn_conv::nchwc as packed;
use gcnn_conv::{algorithm_for, ConvConfig, Strategy};
use gcnn_tensor::workspace::{self, Scratch};
use gcnn_tensor::{nchwc, Layout, Shape4, Tensor4, Workspace};
use serde::Serialize;

/// A trainable layer.
enum NetLayer {
    Conv {
        /// Filter bank `(f, c, k, k)`.
        weights: Tensor4,
        /// Momentum velocity, same shape as `weights`.
        velocity: Tensor4,
        stride: usize,
        pad: usize,
        strategy: Strategy,
        /// Forward-pass tensor layout. Planar [`Layout::Nchw`] runs the
        /// strategy's `forward_ws`; a channel-blocked `NCHW{8,16}c`
        /// layout routes inference through the fused packed path
        /// (training always runs planar — the blocked path is
        /// forward-only).
        layout: Layout,
    },
    Relu,
    MaxPool {
        window: usize,
        stride: usize,
    },
    Fc {
        layer: FcLayer,
        /// Momentum velocities for weights and bias.
        w_velocity: gcnn_tensor::Matrix,
        b_velocity: Vec<f32>,
    },
}

/// Per-layer forward cache for the backward pass.
enum Cache {
    Conv {
        input: Tensor4,
        cfg: ConvConfig,
    },
    Relu {
        input: Tensor4,
    },
    MaxPool {
        input_shape: Shape4,
        fwd: PoolForward,
    },
    Fc {
        input: Tensor4,
    },
}

/// An activation flowing through [`Network::infer_ws`]: planar, or
/// packed NCHWc (arena-backed) between adjacent blocked conv layers.
/// Keeping the packed form across layer boundaries is what makes the
/// pack/unpack transitions explicit and minimal: a conversion happens
/// only where consecutive layers disagree on layout.
enum Act {
    Planar(Tensor4),
    Packed {
        /// Packed `[n][⌈c/b⌉][h][w][b]` buffer (no spatial padding).
        buf: Scratch<f32>,
        /// The planar shape this buffer packs.
        shape: Shape4,
        /// Inner channel-block width.
        block: usize,
    },
}

impl Act {
    fn shape(&self) -> Shape4 {
        match self {
            Act::Planar(t) => t.shape(),
            Act::Packed { shape, .. } => *shape,
        }
    }

    /// Unpack to planar if needed (the explicit layout transition).
    fn into_planar(self) -> Tensor4 {
        match self {
            Act::Planar(t) => t,
            Act::Packed { buf, shape, block } => {
                let mut t = Tensor4::zeros(shape);
                nchwc::unpack_nchwc_from(buf.as_slice(), shape, block, t.as_mut_slice());
                t
            }
        }
    }
}

/// A sequential CNN.
///
/// ```
/// use gcnn_conv::Strategy;
/// use gcnn_models::data::synthetic_digits;
/// use gcnn_models::Network;
///
/// let train = synthetic_digits(32, 16, 4, 1);
/// let test = synthetic_digits(16, 16, 4, 2);
/// let mut net = Network::lenet5(16, 4, Strategy::Unrolling, 7);
/// net.learning_rate = 0.1;
/// let report = net.train(&train, &test, 8, 2);
/// assert_eq!(report.epoch_losses.len(), 2);
/// assert!(report.test_accuracy >= 0.0);
/// ```
pub struct Network {
    layers: Vec<NetLayer>,
    /// Learning rate used by [`Network::train`].
    pub learning_rate: f32,
    /// Classical momentum coefficient (0 = plain SGD).
    pub momentum: f32,
    /// L2 weight decay applied to filters and FC weights (not biases).
    pub weight_decay: f32,
}

/// Result of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss of each epoch.
    pub epoch_losses: Vec<f32>,
    /// Accuracy on the held-out set after training.
    pub test_accuracy: f32,
}

/// One conv layer's outcome from a [`Network::tune`] pass.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TunedLayer {
    /// Index of the layer within the network.
    pub layer_index: usize,
    /// The layer's shape at the tuning batch size.
    pub cfg: ConvConfig,
    /// Winning candidate's name on the substrate.
    pub implementation: String,
    /// The strategy the layer will execute from now on.
    pub strategy: Strategy,
    /// The tensor layout the layer will execute in from now on (planar
    /// `Nchw`, or a channel-blocked `NCHW{8,16}c` for the fused packed
    /// forward path).
    pub layout: Layout,
    /// The winner's (measured or modeled) time, milliseconds.
    pub time_ms: f64,
    /// Where the decision came from (cache / measurement / heuristic).
    pub source: SelectionSource,
}

impl Network {
    /// An empty network with plain-SGD defaults (no momentum, no decay).
    pub fn new(learning_rate: f32) -> Self {
        Network {
            layers: Vec::new(),
            learning_rate,
            momentum: 0.0,
            weight_decay: 0.0,
        }
    }

    /// Append a convolution layer with Xavier-initialized filters.
    #[allow(clippy::too_many_arguments)] // layer hyper-parameters
    pub fn conv(
        mut self,
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
        strategy: Strategy,
        seed: u64,
    ) -> Self {
        let shape = Shape4::new(out_channels, in_channels, kernel, kernel);
        self.layers.push(NetLayer::Conv {
            weights: gcnn_tensor::init::xavier_filters(shape, seed),
            velocity: Tensor4::zeros(shape),
            stride,
            pad,
            strategy,
            layout: Layout::Nchw,
        });
        self
    }

    /// Set the forward-pass layout of the conv layer at `layer_index`
    /// (its index within the network, as reported by
    /// [`TunedLayer::layer_index`] / [`Network::conv_layouts`]).
    ///
    /// # Panics
    /// If `layer_index` is out of range or not a convolution.
    pub fn set_conv_layout(&mut self, layer_index: usize, layout: Layout) {
        match self.layers.get_mut(layer_index) {
            Some(NetLayer::Conv { layout: l, .. }) => *l = layout,
            _ => panic!("set_conv_layout: layer {layer_index} is not a conv layer"),
        }
    }

    /// `(layer_index, layout)` of every conv layer, in network order.
    pub fn conv_layouts(&self) -> Vec<(usize, Layout)> {
        self.layers
            .iter()
            .enumerate()
            .filter_map(|(i, layer)| match layer {
                NetLayer::Conv { layout, .. } => Some((i, *layout)),
                _ => None,
            })
            .collect()
    }

    /// Append a ReLU.
    pub fn relu(mut self) -> Self {
        self.layers.push(NetLayer::Relu);
        self
    }

    /// Append a max-pooling layer.
    pub fn max_pool(mut self, window: usize, stride: usize) -> Self {
        self.layers.push(NetLayer::MaxPool { window, stride });
        self
    }

    /// Append a fully-connected layer.
    pub fn fc(mut self, in_features: usize, out_features: usize, seed: u64) -> Self {
        let layer = FcLayer::xavier(out_features, in_features, seed);
        let w_velocity = gcnn_tensor::Matrix::zeros(out_features, in_features);
        let b_velocity = vec![0.0; out_features];
        self.layers.push(NetLayer::Fc {
            layer,
            w_velocity,
            b_velocity,
        });
        self
    }

    /// LeNet-5 over `size`² single-channel inputs, with every conv layer
    /// backed by the given strategy.
    pub fn lenet5(size: usize, classes: usize, strategy: Strategy, seed: u64) -> Self {
        let after_conv1 = size - 4; // k=5
        let after_pool1 = after_conv1 / 2;
        let after_conv2 = after_pool1 - 4;
        let after_pool2 = after_conv2 / 2;
        Network::new(0.05)
            .conv(1, 6, 5, 1, 0, strategy, seed)
            .relu()
            .max_pool(2, 2)
            .conv(6, 16, 5, 1, 0, strategy, seed + 1)
            .relu()
            .max_pool(2, 2)
            .fc(16 * after_pool2 * after_pool2, 120, seed + 2)
            .relu()
            .fc(120, 84, seed + 3)
            .relu()
            .fc(84, classes, seed + 4)
    }

    /// Tune every conv layer's algorithm for inputs of shape `input`:
    /// walk the network's shapes, ask the [`Tuner`] for each conv
    /// layer's winner on `substrate` (consulting/filling `cache` as the
    /// policy dictates), and rebind the layer's strategy to it.
    ///
    /// Returns one [`TunedLayer`] record per conv layer the tuner could
    /// decide. A layer the tuner cannot decide (e.g. no candidate fits
    /// the memory budget) keeps its current strategy and yields no
    /// record. Runs under the `autotune.tune_network` span.
    ///
    /// Tunes for [`Direction::Training`]; a forward-only deployment
    /// (e.g. a `gcnn-serve` worker) should use [`Network::tune_for`]
    /// with [`Direction::Forward`], which can legitimately pick a
    /// different winner and keys the persistent cache separately.
    ///
    /// [`Direction::Training`]: gcnn_autotune::Direction::Training
    /// [`Direction::Forward`]: gcnn_autotune::Direction::Forward
    pub fn tune(
        &mut self,
        input: Shape4,
        tuner: &Tuner,
        substrate: &dyn Substrate,
        cache: &mut TuningCache,
    ) -> Vec<TunedLayer> {
        self.tune_for(
            input,
            tuner,
            substrate,
            cache,
            gcnn_autotune::Direction::Training,
        )
    }

    /// [`Network::tune`] for an explicit pass [`Direction`]: serving
    /// workers tune their forward pass only, training loops the full
    /// iteration. The direction is part of the cache key, so a warm
    /// tuning cache answers each deployment mode with its own winners.
    ///
    /// [`Direction`]: gcnn_autotune::Direction
    pub fn tune_for(
        &mut self,
        input: Shape4,
        tuner: &Tuner,
        substrate: &dyn Substrate,
        cache: &mut TuningCache,
        direction: gcnn_autotune::Direction,
    ) -> Vec<TunedLayer> {
        let _span = gcnn_trace::span("autotune.tune_network");
        let mut shape = input;
        let mut schedule = Vec::new();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            match layer {
                NetLayer::Conv {
                    weights,
                    stride,
                    pad,
                    strategy,
                    layout,
                    ..
                } => {
                    let w = weights.shape();
                    let mut cfg =
                        ConvConfig::with_channels(shape.n, shape.c, shape.h, w.n, w.h, *stride);
                    cfg.pad = *pad;
                    if let Some(sel) = tuner.select(substrate, cache, &cfg, direction) {
                        *strategy = sel.strategy;
                        *layout = sel.layout;
                        schedule.push(TunedLayer {
                            layer_index: i,
                            cfg,
                            implementation: sel.implementation,
                            strategy: sel.strategy,
                            layout: sel.layout,
                            time_ms: sel.time_ms,
                            source: sel.source,
                        });
                    }
                    shape = Shape4::new(shape.n, w.n, cfg.output(), cfg.output());
                }
                NetLayer::Relu => {}
                NetLayer::MaxPool { window, stride } => {
                    shape = Shape4::new(
                        shape.n,
                        shape.c,
                        (shape.h - *window) / *stride + 1,
                        (shape.w - *window) / *stride + 1,
                    );
                }
                NetLayer::Fc { layer, .. } => {
                    shape = Shape4::new(shape.n, layer.weights.rows(), 1, 1);
                }
            }
        }
        schedule
    }

    /// Forward pass, returning the logits and the per-layer caches.
    fn forward_cached(&self, input: &Tensor4, ws: &mut Workspace) -> (Tensor4, Vec<Cache>) {
        let _span = gcnn_trace::span("network.forward");
        let mut x = input.clone();
        let mut caches = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            match layer {
                NetLayer::Conv {
                    weights,
                    stride,
                    pad,
                    strategy,
                    ..
                } => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.conv"));
                    let s = x.shape();
                    let w = weights.shape();
                    let mut cfg = ConvConfig::with_channels(s.n, s.c, s.h, w.n, w.h, *stride);
                    cfg.pad = *pad;
                    let algo = algorithm_for(*strategy);
                    let y = algo.forward_ws(&cfg, &x, weights, ws);
                    caches.push(Cache::Conv { input: x, cfg });
                    x = y;
                }
                NetLayer::Relu => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.relu"));
                    let y = ReluLayer.forward(&x);
                    caches.push(Cache::Relu { input: x });
                    x = y;
                }
                NetLayer::MaxPool { window, stride } => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.max_pool"));
                    let pool = PoolLayer::new(PoolKind::Max, *window, *stride);
                    let fwd = pool.forward(&x);
                    let y = fwd.output.clone();
                    caches.push(Cache::MaxPool {
                        input_shape: x.shape(),
                        fwd,
                    });
                    x = y;
                }
                NetLayer::Fc { layer, .. } => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.fc"));
                    let y = layer.forward(&x);
                    caches.push(Cache::Fc { input: x });
                    x = y;
                }
            }
        }
        (x, caches)
    }

    /// Inference: logits only.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        let mut ws = Workspace::new();
        self.infer_ws(input, &mut ws)
    }

    /// Batched inference with an explicit [`Workspace`], retaining no
    /// per-layer caches: unlike [`Network::forward_cached`], the input
    /// of each layer is dropped as soon as the next activation exists.
    ///
    /// This is the serving entry point: a long-lived worker (e.g. in
    /// `gcnn-serve`) owns one workspace, so after the first batch every
    /// conv layer's scratch (im2col columns, GEMM pack buffers, FFT
    /// spectra) is recycled from the arena rather than reallocated.
    /// `input.shape().n` is the mini-batch size — the paper's first
    /// sweep axis — and any size may be used from call to call; the
    /// arena's size-classed pools absorb the variation.
    /// Layers whose layout is a channel-blocked `NCHW{8,16}c` execute
    /// the fused packed path instead: a blocked conv consumes a
    /// directly following ReLU (and, after it, a max-pool) in a single
    /// tile-at-a-time pass, so the intermediate feature maps between
    /// the fused stages are never materialized. Activations stay packed
    /// between adjacent blocked convs; pack/unpack transitions happen
    /// only where consecutive layers disagree on layout.
    pub fn infer_ws(&self, input: &Tensor4, ws: &mut Workspace) -> Tensor4 {
        let _span = gcnn_trace::span("network.infer");
        let mut x = Act::Planar(input.clone());
        let mut i = 0;
        while i < self.layers.len() {
            match &self.layers[i] {
                NetLayer::Conv {
                    weights,
                    stride,
                    pad,
                    strategy,
                    layout,
                    ..
                } => {
                    let s = x.shape();
                    let w = weights.shape();
                    let mut cfg = ConvConfig::with_channels(s.n, s.c, s.h, w.n, w.h, *stride);
                    cfg.pad = *pad;
                    let blocked = layout
                        .channel_block()
                        .filter(|_| packed::supports(&cfg).is_ok());
                    if let Some(block) = blocked {
                        let _layer = gcnn_trace::span_owned(|| format!("layer{i}.conv_nchwc"));
                        let (act, consumed) = self.fused_packed_chain(i, &cfg, weights, block, x);
                        x = act;
                        i += consumed;
                        continue;
                    }
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.conv"));
                    let xp = x.into_planar();
                    let algo = algorithm_for(*strategy);
                    x = Act::Planar(algo.forward_ws(&cfg, &xp, weights, ws));
                }
                NetLayer::Relu => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.relu"));
                    x = Act::Planar(ReluLayer.forward(&x.into_planar()));
                }
                NetLayer::MaxPool { window, stride } => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.max_pool"));
                    let pool = PoolLayer::new(PoolKind::Max, *window, *stride);
                    x = Act::Planar(pool.forward(&x.into_planar()).output);
                }
                NetLayer::Fc { layer, .. } => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.fc"));
                    x = Act::Planar(layer.forward(&x.into_planar()));
                }
            }
            i += 1;
        }
        x.into_planar()
    }

    /// Execute one blocked conv starting at layer `i`, fusing a
    /// directly following ReLU (and max-pool after it) when present.
    /// Returns the packed output activation and how many layers were
    /// consumed. All buffers (packed input, packed weights, packed
    /// output) come from the thread-local arena, so a warm caller
    /// allocates nothing on this path.
    fn fused_packed_chain(
        &self,
        i: usize,
        cfg: &ConvConfig,
        weights: &Tensor4,
        block: usize,
        x: Act,
    ) -> (Act, usize) {
        let fuse_relu = matches!(self.layers.get(i + 1), Some(NetLayer::Relu));
        let fuse_pool = if fuse_relu {
            match self.layers.get(i + 2) {
                Some(NetLayer::MaxPool { window, stride }) if cfg.output() >= *window => {
                    Some((*window, *stride))
                }
                _ => None,
            }
        } else {
            None
        };

        // Bring the activation into packed form with this layer's
        // spatial padding baked in (the zero borders make the conv
        // loops branch-free).
        let pin = match x {
            Act::Packed {
                buf,
                shape,
                block: prev,
            } if prev == block => {
                if cfg.pad == 0 {
                    buf // already in exactly the form the kernel wants
                } else {
                    let mut padded = workspace::take_f32(packed::packed_input_len(cfg, block));
                    nchwc::repad_packed(
                        buf.as_slice(),
                        shape,
                        block,
                        cfg.pad,
                        padded.as_mut_slice(),
                    );
                    padded
                }
            }
            other => {
                let planar = other.into_planar();
                let mut fresh = workspace::take_f32(packed::packed_input_len(cfg, block));
                packed::pack_input(cfg, &planar, block, fresh.as_mut_slice());
                fresh
            }
        };
        // Weights are packed per call: the bank is tiny next to the
        // conv itself, and repacking keeps training updates (which
        // mutate the planar weights) from invalidating anything.
        let mut pw = workspace::take_f32(packed::packed_filter_len(cfg, block));
        packed::pack_filters(cfg, weights, block, pw.as_mut_slice());

        if let Some((window, pstride)) = fuse_pool {
            let po = packed::pooled_output(cfg, window, pstride);
            let oshape = Shape4::new(cfg.batch, cfg.filters, po, po);
            let mut pout = workspace::take_f32(nchwc::packed_len(oshape, block, 0));
            packed::fused_conv_relu_pool(
                cfg,
                block,
                window,
                pstride,
                pin.as_slice(),
                pw.as_slice(),
                pout.as_mut_slice(),
            );
            (
                Act::Packed {
                    buf: pout,
                    shape: oshape,
                    block,
                },
                3,
            )
        } else {
            let oshape = cfg.output_shape();
            let mut pout = workspace::take_f32(packed::packed_output_len(cfg, block));
            packed::fused_conv_relu(
                cfg,
                block,
                pin.as_slice(),
                pw.as_slice(),
                pout.as_mut_slice(),
                fuse_relu,
            );
            (
                Act::Packed {
                    buf: pout,
                    shape: oshape,
                    block,
                },
                1 + usize::from(fuse_relu),
            )
        }
    }

    /// Predicted class per image.
    pub fn predict(&self, input: &Tensor4) -> Vec<usize> {
        let logits = self.forward(input);
        let s = logits.shape();
        (0..s.n)
            .map(|n| {
                let row = &logits.as_slice()[n * s.image_len()..(n + 1) * s.image_len()];
                gcnn_tensor::ops::argmax(row)
            })
            .collect()
    }

    /// One SGD step over a mini-batch; returns the batch loss.
    pub fn train_batch(&mut self, images: &Tensor4, labels: &[usize]) -> f32 {
        let mut ws = Workspace::new();
        self.train_batch_ws(images, labels, &mut ws)
    }

    /// [`Network::train_batch`] with an explicit [`Workspace`].
    ///
    /// [`Network::train`] owns one workspace for the whole run, so after
    /// the first batch every conv layer's scratch (im2col columns, GEMM
    /// pack buffers, FFT spectra) is recycled rather than reallocated.
    pub fn train_batch_ws(
        &mut self,
        images: &Tensor4,
        labels: &[usize],
        ws: &mut Workspace,
    ) -> f32 {
        let _span = gcnn_trace::span("network.train_batch");
        let (logits, caches) = self.forward_cached(images, ws);
        let out = softmax_cross_entropy(&logits, labels);
        let mut grad = out.grad_logits;

        let lr = self.learning_rate;
        let mu = self.momentum;
        let wd = self.weight_decay;
        let _bwd = gcnn_trace::span("network.backward");
        for (i, (layer, cache)) in self.layers.iter_mut().zip(caches).enumerate().rev() {
            match (layer, cache) {
                (
                    NetLayer::Conv {
                        weights,
                        velocity,
                        strategy,
                        ..
                    },
                    Cache::Conv { input, cfg },
                ) => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.conv"));
                    let algo = algorithm_for(*strategy);
                    let grad_w = algo.backward_filters_ws(&cfg, &input, &grad, ws);
                    grad = algo.backward_data_ws(&cfg, &grad, weights, ws);
                    // v ← μ·v − lr·(∇w + wd·w);  w ← w + v
                    for ((v, g), w) in velocity
                        .as_mut_slice()
                        .iter_mut()
                        .zip(grad_w.as_slice())
                        .zip(weights.as_mut_slice())
                    {
                        *v = mu * *v - lr * (g + wd * *w);
                        *w += *v;
                    }
                }
                (NetLayer::Relu, Cache::Relu { input }) => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.relu"));
                    grad = ReluLayer.backward(&input, &grad);
                }
                (NetLayer::MaxPool { window, stride }, Cache::MaxPool { input_shape, fwd }) => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.max_pool"));
                    let pool = PoolLayer::new(PoolKind::Max, *window, *stride);
                    grad = pool.backward(input_shape, &fwd, &grad);
                }
                (
                    NetLayer::Fc {
                        layer,
                        w_velocity,
                        b_velocity,
                    },
                    Cache::Fc { input },
                ) => {
                    let _layer = gcnn_trace::span_owned(|| format!("layer{i}.fc"));
                    // FC expects (b, features, 1, 1) gradients.
                    let grads = layer.backward(&input, &grad);
                    for ((v, g), w) in w_velocity
                        .as_mut_slice()
                        .iter_mut()
                        .zip(grads.grad_weights.as_slice())
                        .zip(layer.weights.as_mut_slice())
                    {
                        *v = mu * *v - lr * (g + wd * *w);
                        *w += *v;
                    }
                    for ((v, g), b) in b_velocity
                        .iter_mut()
                        .zip(&grads.grad_bias)
                        .zip(layer.bias.iter_mut())
                    {
                        *v = mu * *v - lr * g; // no decay on biases
                        *b += *v;
                    }
                    grad = grads.grad_input;
                }
                _ => unreachable!("layer/cache mismatch"),
            }
        }
        out.loss
    }

    /// Train for `epochs` over `train`, then evaluate on `test`.
    pub fn train(
        &mut self,
        train: &Dataset,
        test: &Dataset,
        batch: usize,
        epochs: usize,
    ) -> TrainReport {
        assert!(
            batch > 0 && batch <= train.len(),
            "Network::train: bad batch"
        );
        let mut epoch_losses = Vec::with_capacity(epochs);
        let mut ws = Workspace::new();
        for _ in 0..epochs {
            let mut loss_sum = 0.0;
            let mut batches = 0;
            let mut start = 0;
            while start + batch <= train.len() {
                let (imgs, labels) = train.batch(start, batch);
                loss_sum += self.train_batch_ws(&imgs, &labels, &mut ws);
                batches += 1;
                start += batch;
            }
            epoch_losses.push(loss_sum / batches.max(1) as f32);
        }
        TrainReport {
            epoch_losses,
            test_accuracy: self.accuracy(test),
        }
    }

    /// Serialize all parameters (conv filters, FC weights, FC biases —
    /// not optimizer state) to the `gcnn` weight format.
    pub fn save_weights(&self) -> Vec<u8> {
        let mut blobs: Vec<&[f32]> = Vec::new();
        for layer in &self.layers {
            match layer {
                NetLayer::Conv { weights, .. } => blobs.push(weights.as_slice()),
                NetLayer::Fc { layer, .. } => {
                    blobs.push(layer.weights.as_slice());
                    blobs.push(&layer.bias);
                }
                NetLayer::Relu | NetLayer::MaxPool { .. } => {}
            }
        }
        crate::persist::encode_blobs(&blobs)
    }

    /// Load parameters previously produced by [`Network::save_weights`]
    /// into a network of the same architecture.
    pub fn load_weights(&mut self, bytes: &[u8]) -> Result<(), crate::persist::PersistError> {
        let blobs = crate::persist::decode_blobs(bytes)?;
        let mut it = blobs.into_iter();
        let mut next = |expected: usize, what: &str| {
            let blob = it
                .next()
                .ok_or(crate::persist::PersistError::ShapeMismatch {
                    detail: format!("missing blob for {what}"),
                })?;
            if blob.len() != expected {
                return Err(crate::persist::PersistError::ShapeMismatch {
                    detail: format!("{what}: expected {expected} values, got {}", blob.len()),
                });
            }
            Ok(blob)
        };
        for layer in &mut self.layers {
            match layer {
                NetLayer::Conv { weights, .. } => {
                    let blob = next(weights.shape().len(), "conv filters")?;
                    weights.as_mut_slice().copy_from_slice(&blob);
                }
                NetLayer::Fc { layer, .. } => {
                    let w = next(layer.weights.rows() * layer.weights.cols(), "fc weights")?;
                    layer.weights.as_mut_slice().copy_from_slice(&w);
                    let b = next(layer.bias.len(), "fc bias")?;
                    layer.bias.copy_from_slice(&b);
                }
                NetLayer::Relu | NetLayer::MaxPool { .. } => {}
            }
        }
        if it.next().is_some() {
            return Err(crate::persist::PersistError::ShapeMismatch {
                detail: "extra parameter blobs".into(),
            });
        }
        Ok(())
    }

    /// Classification accuracy over a dataset.
    pub fn accuracy(&self, data: &Dataset) -> f32 {
        if data.is_empty() {
            return 0.0;
        }
        let preds = self.predict(&data.images);
        let correct = preds
            .iter()
            .zip(&data.labels)
            .filter(|(p, l)| p == l)
            .count();
        correct as f32 / data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::synthetic_digits;

    #[test]
    fn forward_shapes() {
        let net = Network::lenet5(28, 10, Strategy::Unrolling, 1);
        let x = Tensor4::zeros(Shape4::new(3, 1, 28, 28));
        let logits = net.forward(&x);
        assert_eq!(logits.shape(), Shape4::new(3, 10, 1, 1));
    }

    #[test]
    fn single_batch_loss_decreases() {
        let data = synthetic_digits(8, 16, 4, 11);
        let mut net = Network::lenet5(16, 4, Strategy::Unrolling, 2);
        net.learning_rate = 0.15;
        let (imgs, labels) = data.batch(0, 8);
        let first = net.train_batch(&imgs, &labels);
        let mut last = first;
        for _ in 0..30 {
            last = net.train_batch(&imgs, &labels);
        }
        assert!(last < 0.5 * first, "loss {first} → {last}");
    }

    #[test]
    fn strategies_train_identically_at_start() {
        // The first forward pass must agree across strategies (same
        // seed ⇒ same weights ⇒ same logits up to rounding).
        let x = synthetic_digits(4, 16, 4, 3).images;
        let a = Network::lenet5(16, 4, Strategy::Direct, 9).forward(&x);
        let b = Network::lenet5(16, 4, Strategy::Unrolling, 9).forward(&x);
        let c = Network::lenet5(16, 4, Strategy::Fft, 9).forward(&x);
        assert!(a.rel_l2_dist(&b).unwrap() < 1e-3);
        assert!(a.rel_l2_dist(&c).unwrap() < 1e-3);
    }

    #[test]
    fn save_load_roundtrip_preserves_predictions() {
        let data = synthetic_digits(8, 16, 4, 31);
        let (imgs, labels) = data.batch(0, 8);

        let mut trained = Network::lenet5(16, 4, Strategy::Unrolling, 13);
        for _ in 0..5 {
            trained.train_batch(&imgs, &labels);
        }
        let bytes = trained.save_weights();

        // Fresh net with different seed: predictions differ, until loaded.
        let mut fresh = Network::lenet5(16, 4, Strategy::Unrolling, 99);
        assert!(
            trained
                .forward(&imgs)
                .rel_l2_dist(&fresh.forward(&imgs))
                .unwrap()
                > 1e-3
        );
        fresh.load_weights(&bytes).unwrap();
        let dist = trained
            .forward(&imgs)
            .rel_l2_dist(&fresh.forward(&imgs))
            .unwrap();
        assert!(dist < 1e-6, "loaded net diverges: {dist}");
    }

    #[test]
    fn load_rejects_wrong_architecture() {
        let small = Network::lenet5(16, 4, Strategy::Unrolling, 1).save_weights();
        let mut other = Network::lenet5(16, 8, Strategy::Unrolling, 1); // 8 classes
        assert!(other.load_weights(&small).is_err());
    }

    #[test]
    fn momentum_accelerates_convergence() {
        let data = synthetic_digits(8, 16, 4, 21);
        let (imgs, labels) = data.batch(0, 8);

        let run = |momentum: f32| {
            let mut net = Network::lenet5(16, 4, Strategy::Unrolling, 3);
            net.learning_rate = 0.05;
            net.momentum = momentum;
            let mut last = 0.0;
            for _ in 0..15 {
                last = net.train_batch(&imgs, &labels);
            }
            last
        };
        let plain = run(0.0);
        let with_momentum = run(0.9);
        assert!(
            with_momentum < plain,
            "momentum {with_momentum} should beat plain {plain}"
        );
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let data = synthetic_digits(8, 16, 4, 22);
        let (imgs, labels) = data.batch(0, 8);

        let norm_after = |wd: f32| {
            let mut net = Network::lenet5(16, 4, Strategy::Unrolling, 5);
            net.learning_rate = 0.05;
            net.weight_decay = wd;
            for _ in 0..10 {
                net.train_batch(&imgs, &labels);
            }
            // Probe: forward magnitude as a proxy for weight scale.
            let logits = net.forward(&imgs);
            logits.as_slice().iter().map(|x| x * x).sum::<f32>()
        };
        let free = norm_after(0.0);
        let decayed = norm_after(0.05);
        assert!(decayed < free, "decay {decayed} should shrink vs {free}");
    }

    #[test]
    fn tune_rebinds_strategies_and_is_cache_stable() {
        use gcnn_autotune::{Policy, SimSubstrate};

        // Batch 32 so cuda-convnet2 (batch % 32, filters % 16) stays in
        // play; LeNet-5's filter counts (6, 16) exclude it on layer 0
        // regardless, which the tuner must tolerate.
        let sub = SimSubstrate::k40c();
        let mut cache = gcnn_autotune::TuningCache::new();
        let tuner = Tuner::new(Policy::Measure).with_params(gcnn_autotune::MeasureParams {
            repeats: gcnn_autotune::Repeats::new(1, 3),
            timeout_ms: None,
        });
        let input = Shape4::new(32, 1, 28, 28);

        let mut net = Network::lenet5(28, 10, Strategy::Direct, 1);
        let cold = net.tune(input, &tuner, &sub, &mut cache);
        assert_eq!(cold.len(), 2, "LeNet-5 has two conv layers");
        assert_eq!(cold[0].cfg.input, 28);
        assert_eq!(cold[1].cfg.input, 12, "pool halves 24 → 12");
        assert!(cold
            .iter()
            .all(|l| l.source == gcnn_autotune::SelectionSource::Measured));

        // The tuned strategies must actually run: forward still works.
        let x = Tensor4::zeros(input);
        assert_eq!(net.forward(&x).shape(), Shape4::new(32, 10, 1, 1));

        // Warm pass on a fresh network: identical schedule, all hits.
        let mut net2 = Network::lenet5(28, 10, Strategy::Direct, 1);
        let warm = net2.tune(input, &tuner, &sub, &mut cache);
        assert_eq!(warm.len(), cold.len());
        for (c, w) in cold.iter().zip(&warm) {
            assert_eq!(w.source, gcnn_autotune::SelectionSource::Cache);
            assert_eq!(c.implementation, w.implementation);
            assert_eq!(c.strategy, w.strategy);
            assert_eq!(c.cfg, w.cfg);
        }
    }

    #[test]
    fn tune_heuristic_matches_measured_winner_on_sim() {
        use gcnn_autotune::{Policy, SimSubstrate};

        let sub = SimSubstrate::k40c();
        let input = Shape4::new(32, 1, 16, 16);
        let mut a = Network::lenet5(16, 4, Strategy::Direct, 2);
        let mut b = Network::lenet5(16, 4, Strategy::Direct, 2);
        let measured = a.tune(
            input,
            &Tuner::new(Policy::Measure).with_params(gcnn_autotune::MeasureParams {
                repeats: gcnn_autotune::Repeats::new(1, 3),
                timeout_ms: None,
            }),
            &sub,
            &mut gcnn_autotune::TuningCache::new(),
        );
        let heuristic = b.tune(
            input,
            &Tuner::new(Policy::Heuristic),
            &sub,
            &mut gcnn_autotune::TuningCache::new(),
        );
        assert_eq!(measured.len(), heuristic.len());
        for (m, h) in measured.iter().zip(&heuristic) {
            assert_eq!(m.implementation, h.implementation);
        }
    }

    #[test]
    fn infer_ws_matches_cached_forward() {
        let net = Network::lenet5(16, 4, Strategy::Fft, 17);
        let x = synthetic_digits(5, 16, 4, 8).images;
        let mut ws = Workspace::new();
        let lean = net.infer_ws(&x, &mut ws);
        let cached = net.forward_cached(&x, &mut ws).0;
        assert_eq!(
            lean, cached,
            "inference path must match the training forward"
        );
        // Second call must be arena-served: the serving workers rely on
        // a warm workspace after the first batch.
        let again = net.infer_ws(&x, &mut ws);
        assert_eq!(again, cached);
    }

    #[test]
    fn blocked_layout_inference_matches_planar() {
        // LeNet-5 with every conv forced to the blocked layout: both
        // conv+relu+pool chains run fused, and the result must agree
        // with the planar path. Accumulation orders differ between the
        // packed and planar kernels, so the comparison budgets ulps.
        let x = synthetic_digits(5, 16, 4, 8).images;
        let planar = Network::lenet5(16, 4, Strategy::Direct, 17);
        let mut blocked = Network::lenet5(16, 4, Strategy::Direct, 17);
        for (idx, _) in planar.conv_layouts() {
            blocked.set_conv_layout(idx, gcnn_tensor::nchwc::preferred_layout());
        }
        let want = planar.forward(&x);
        let got = blocked.forward(&x);
        assert_eq!(want.shape(), got.shape());
        assert!(
            want.max_abs_diff(&got).unwrap() < 1e-4,
            "fused blocked inference diverged from planar"
        );
    }

    #[test]
    fn adjacent_blocked_convs_stay_packed_and_match_planar() {
        // conv(pad=1)+relu → conv(pad=1)+relu → conv (no relu): the
        // activation stays packed across all three conv boundaries
        // (exercising the repad transition, since pad > 0), and the
        // trailing unfused blocked conv unpacks only at the end.
        let build = || {
            Network::new(0.05)
                .conv(3, 10, 3, 1, 1, Strategy::Direct, 5)
                .relu()
                .conv(10, 8, 3, 1, 1, Strategy::Direct, 6)
                .relu()
                .conv(8, 4, 3, 1, 0, Strategy::Direct, 7)
        };
        let x = gcnn_tensor::init::uniform_tensor(Shape4::new(2, 3, 10, 10), -1.0, 1.0, 12);
        let planar = build();
        let mut blocked = build();
        for (idx, _) in planar.conv_layouts() {
            blocked.set_conv_layout(idx, gcnn_tensor::nchwc::preferred_layout());
        }
        let want = planar.forward(&x);
        let got = blocked.forward(&x);
        assert!(
            want.max_abs_diff(&got).unwrap() < 1e-4,
            "packed conv chain diverged from planar"
        );
    }

    #[test]
    fn blocked_inference_is_arena_served_when_warm() {
        // The fused path checks every intermediate out of the arena;
        // after a warm-up round, a whole forward pass must add no fresh
        // pool allocations (Tensor4 outputs are plain allocations and
        // are not counted — the arena discipline covers scratch).
        let mut net = Network::lenet5(16, 4, Strategy::Direct, 23);
        for (idx, _) in net.conv_layouts() {
            net.set_conv_layout(idx, gcnn_tensor::nchwc::preferred_layout());
        }
        let x = synthetic_digits(4, 16, 4, 3).images;
        let mut ws = Workspace::new();
        for _ in 0..2 {
            let _ = net.infer_ws(&x, &mut ws);
        }
        let (_, fresh) = gcnn_tensor::workspace::alloc_scope(|| {
            let _ = net.infer_ws(&x, &mut ws);
        });
        assert_eq!(fresh, 0, "warm blocked inference must not miss the arena");
    }

    #[test]
    fn tune_rebinds_layouts_consistently() {
        // Whatever the tuner picks, the network's per-layer layouts
        // must mirror the schedule — and an "nchwc" winner must carry a
        // blocked layout.
        use gcnn_autotune::{CpuSubstrate, Direction, Policy};

        let sub = CpuSubstrate::new();
        let mut cache = gcnn_autotune::TuningCache::new();
        let tuner = Tuner::new(Policy::Measure).with_params(gcnn_autotune::MeasureParams {
            repeats: gcnn_autotune::Repeats::new(1, 2),
            timeout_ms: None,
        });
        let mut net = Network::lenet5(16, 4, Strategy::Direct, 1);
        let schedule = net.tune_for(
            Shape4::new(4, 1, 16, 16),
            &tuner,
            &sub,
            &mut cache,
            Direction::Forward,
        );
        assert_eq!(schedule.len(), 2);
        let layouts = net.conv_layouts();
        for (t, (idx, layout)) in schedule.iter().zip(&layouts) {
            assert_eq!(t.layer_index, *idx);
            assert_eq!(t.layout, *layout);
            assert_eq!(
                t.implementation == "nchwc",
                t.layout.is_blocked(),
                "only the nchwc candidate runs blocked"
            );
        }
        // The rebound network must still infer correctly.
        let x = synthetic_digits(4, 16, 4, 3).images;
        let reference = Network::lenet5(16, 4, Strategy::Direct, 1).forward(&x);
        let tuned = net.forward(&x);
        assert!(reference.max_abs_diff(&tuned).unwrap() < 1e-4);
    }

    #[test]
    fn network_is_send() {
        // gcnn-serve moves one Network per worker across a thread
        // boundary; this must stay true as layers evolve.
        fn assert_send<T: Send>() {}
        assert_send::<Network>();
        assert_send::<Workspace>();
    }

    #[test]
    fn tune_for_forward_keys_cache_separately() {
        // The simulator substrate only models full training iterations,
        // so forward-only tuning — what a serving worker wants — runs on
        // the wall-clock CPU substrate.
        use gcnn_autotune::{CpuSubstrate, Direction, Policy};

        let sub = CpuSubstrate::new();
        let mut cache = gcnn_autotune::TuningCache::new();
        let tuner = Tuner::new(Policy::Measure).with_params(gcnn_autotune::MeasureParams {
            repeats: gcnn_autotune::Repeats::new(1, 2),
            timeout_ms: None,
        });
        let input = Shape4::new(8, 1, 16, 16);

        let mut net = Network::lenet5(16, 4, Strategy::Direct, 1);
        let fwd = net.tune_for(input, &tuner, &sub, &mut cache, Direction::Forward);
        assert_eq!(fwd.len(), 2, "LeNet-5 has two conv layers");
        assert!(fwd
            .iter()
            .all(|l| l.source == gcnn_autotune::SelectionSource::Measured));
        // A training-direction pass afterwards must measure again (its
        // cache key differs), not answer from the forward entries.
        let mut net2 = Network::lenet5(16, 4, Strategy::Direct, 1);
        let train = net2.tune(input, &tuner, &sub, &mut cache);
        assert!(train
            .iter()
            .all(|l| l.source == gcnn_autotune::SelectionSource::Measured));
        // And a second forward pass is a pure warm-cache hit.
        let mut net3 = Network::lenet5(16, 4, Strategy::Direct, 1);
        let warm = net3.tune_for(input, &tuner, &sub, &mut cache, Direction::Forward);
        assert_eq!(warm.len(), fwd.len());
        assert!(warm
            .iter()
            .all(|l| l.source == gcnn_autotune::SelectionSource::Cache));
    }

    #[test]
    fn predict_returns_class_indices() {
        let net = Network::lenet5(16, 4, Strategy::Unrolling, 5);
        let x = synthetic_digits(6, 16, 4, 4).images;
        let preds = net.predict(&x);
        assert_eq!(preds.len(), 6);
        assert!(preds.iter().all(|&p| p < 4));
    }
}
