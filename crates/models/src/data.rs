//! Deterministic synthetic datasets.
//!
//! The paper's measurements are shape-driven — it trains on standard
//! datasets (MNIST/CIFAR/ImageNet, §I) but reports layer *runtimes*.
//! For the executable training path we synthesize an MNIST-like task:
//! each class is a distinct oriented-bar pattern plus noise, which a
//! LeNet-style CNN can learn quickly and deterministically.

use gcnn_tensor::{Shape4, Tensor4};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A labeled image batch.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Images, `(n, 1, size, size)`.
    pub images: Tensor4,
    /// Labels in `0..classes`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

impl Dataset {
    /// Number of examples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Copy a contiguous mini-batch `[start, start+len)`.
    pub fn batch(&self, start: usize, len: usize) -> (Tensor4, Vec<usize>) {
        let s = self.images.shape();
        assert!(start + len <= self.len(), "Dataset::batch: out of range");
        let img_len = s.image_len();
        let data = self.images.as_slice()[start * img_len..(start + len) * img_len].to_vec();
        let images = Tensor4::from_vec(Shape4::new(len, s.c, s.h, s.w), data)
            .expect("batch slice matches shape");
        (images, self.labels[start..start + len].to_vec())
    }
}

/// Class-conditional pattern value at `(h, w)`: class `c` draws a bar of
/// orientation `c·18°` through the image center.
fn class_pattern(class: usize, classes: usize, size: usize, h: usize, w: usize) -> f32 {
    let theta = std::f32::consts::PI * class as f32 / classes as f32;
    let (sin, cos) = theta.sin_cos();
    let cy = (size as f32 - 1.0) / 2.0;
    let cx = cy;
    // Signed distance from the bar through the center at angle theta.
    let d = (h as f32 - cy) * cos - (w as f32 - cx) * sin;
    // Bar of half-width ~12 % of the image.
    if d.abs() < size as f32 * 0.12 {
        1.0
    } else {
        0.0
    }
}

/// Generate `n` synthetic digit images of `size`² pixels over `classes`
/// classes with additive uniform noise. Deterministic per seed.
pub fn synthetic_digits(n: usize, size: usize, classes: usize, seed: u64) -> Dataset {
    assert!(classes > 0, "synthetic_digits: zero classes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let shape = Shape4::new(n, 1, size, size);
    let mut images = Tensor4::zeros(shape);
    let mut labels = Vec::with_capacity(n);

    for i in 0..n {
        let class = rng.gen_range(0..classes);
        labels.push(class);
        let plane = images.plane_mut(i, 0);
        for h in 0..size {
            for w in 0..size {
                let signal = class_pattern(class, classes, size, h, w);
                let noise: f32 = rng.gen_range(-0.25..0.25);
                plane[h * size + w] = signal + noise;
            }
        }
    }

    Dataset {
        images,
        labels,
        classes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a = synthetic_digits(16, 16, 4, 7);
        let b = synthetic_digits(16, 16, 4, 7);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
        let c = synthetic_digits(16, 16, 4, 8);
        assert_ne!(a.labels, c.labels);
    }

    #[test]
    fn labels_in_range() {
        let d = synthetic_digits(100, 12, 10, 3);
        assert!(d.labels.iter().all(|&l| l < 10));
        assert_eq!(d.len(), 100);
    }

    #[test]
    fn classes_have_distinct_patterns() {
        // Mean images of two classes must differ clearly.
        let size = 16;
        let mut sum0 = vec![0.0f32; size * size];
        let mut sum1 = vec![0.0f32; size * size];
        for h in 0..size {
            for w in 0..size {
                sum0[h * size + w] = class_pattern(0, 4, size, h, w);
                sum1[h * size + w] = class_pattern(2, 4, size, h, w);
            }
        }
        let diff: f32 = sum0.iter().zip(&sum1).map(|(a, b)| (a - b).abs()).sum();
        assert!(diff > 10.0, "patterns too similar: {diff}");
    }

    #[test]
    fn batch_extraction() {
        let d = synthetic_digits(10, 8, 2, 1);
        let (imgs, labels) = d.batch(4, 3);
        assert_eq!(imgs.shape(), Shape4::new(3, 1, 8, 8));
        assert_eq!(labels, d.labels[4..7]);
        assert_eq!(imgs.image(0), d.images.image(4));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn batch_bounds_checked() {
        synthetic_digits(5, 8, 2, 1).batch(4, 3);
    }
}
