//! Declarative model descriptions and the shape walker.

use gcnn_conv::layers::PoolKind;
use gcnn_conv::ConvConfig;
use serde::{Deserialize, Serialize};

/// One layer's hyper-parameters (shape-free; channels and spatial sizes
/// are inferred by the walker).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum LayerSpec {
    /// Square convolution.
    Conv {
        /// Output channels (filter count).
        out: usize,
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Max pooling.
    MaxPool {
        /// Window size.
        window: usize,
        /// Stride.
        stride: usize,
        /// Zero padding (Inception's stride-1 pool-proj branches pad to
        /// preserve spatial size).
        pad: usize,
    },
    /// Average pooling.
    AvgPool {
        /// Window size.
        window: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Rectified linear unit.
    Relu,
    /// Fully-connected layer.
    Fc {
        /// Output features.
        out: usize,
    },
    /// GoogLeNet Inception module: parallel branches concatenated along
    /// channels.
    Inception {
        /// Each branch is a sequence of layers applied to the module
        /// input.
        branches: Vec<Vec<NamedLayer>>,
    },
    /// Softmax classifier head.
    Softmax,
}

/// A named layer within a model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedLayer {
    /// Layer name (e.g. "conv2").
    pub name: String,
    /// The hyper-parameters.
    pub spec: LayerSpec,
}

impl NamedLayer {
    /// Construct a named layer.
    pub fn new(name: impl Into<String>, spec: LayerSpec) -> Self {
        NamedLayer {
            name: name.into(),
            spec,
        }
    }
}

/// A full model description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Model name as the paper uses it.
    pub name: String,
    /// Input channels.
    pub input_channels: usize,
    /// Input spatial size (square).
    pub input_size: usize,
    /// The layers in execution order.
    pub layers: Vec<NamedLayer>,
}

/// Classification of an instantiated layer, matching the paper's Fig. 2
/// categories.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstanceKind {
    /// Convolutional layer.
    Conv,
    /// Pooling layer (max or average).
    Pool,
    /// ReLU layer.
    Relu,
    /// Fully-connected layer.
    Fc,
    /// Concat (Inception join).
    Concat,
    /// Softmax head.
    Softmax,
}

/// One instantiated layer with resolved shapes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerInstance {
    /// Qualified name ("inception3a/branch1/conv" etc.).
    pub name: String,
    /// Layer category.
    pub kind: InstanceKind,
    /// Resolved convolution configuration (for `kind == Conv`).
    pub conv: Option<ConvConfig>,
    /// Pooling parameters (kind, window, stride) for pooling layers.
    pub pool: Option<(PoolKindSer, usize, usize)>,
    /// FC dimensions `(in_features, out_features)`.
    pub fc: Option<(usize, usize)>,
    /// Elements entering the layer (per mini-batch).
    pub in_elems: u64,
    /// Elements leaving the layer (per mini-batch).
    pub out_elems: u64,
}

/// Serializable mirror of [`PoolKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PoolKindSer {
    /// Max pooling.
    Max,
    /// Average pooling.
    Average,
}

impl From<PoolKindSer> for PoolKind {
    fn from(p: PoolKindSer) -> PoolKind {
        match p {
            PoolKindSer::Max => PoolKind::Max,
            PoolKindSer::Average => PoolKind::Average,
        }
    }
}

/// Walk a model, resolving every layer's shapes for a given mini-batch.
///
/// Returns the flattened instance list (Inception branches are expanded
/// with qualified names, followed by one `Concat` instance).
///
/// # Panics
/// Panics if a layer is geometrically impossible (kernel larger than its
/// input, FC after nothing, …).
pub fn walk(model: &ModelSpec, batch: usize) -> Vec<LayerInstance> {
    let mut out = Vec::new();
    let (c, s) = walk_sequence(
        &model.layers,
        batch,
        model.input_channels,
        model.input_size,
        "",
        &mut out,
    );
    let _ = (c, s);
    out
}

/// Walk one layer sequence; returns the resulting (channels, spatial).
fn walk_sequence(
    layers: &[NamedLayer],
    batch: usize,
    mut channels: usize,
    mut spatial: usize,
    prefix: &str,
    out: &mut Vec<LayerInstance>,
) -> (usize, usize) {
    for layer in layers {
        let name = if prefix.is_empty() {
            layer.name.clone()
        } else {
            format!("{prefix}/{}", layer.name)
        };
        let in_elems = (batch * channels * spatial * spatial) as u64;
        match &layer.spec {
            LayerSpec::Conv {
                out: f,
                kernel,
                stride,
                pad,
            } => {
                let mut cfg =
                    ConvConfig::with_channels(batch, channels, spatial, *f, *kernel, *stride);
                cfg.pad = *pad;
                assert!(cfg.is_valid(), "{name}: invalid conv {cfg}");
                let o = cfg.output();
                out.push(LayerInstance {
                    name,
                    kind: InstanceKind::Conv,
                    conv: Some(cfg),
                    pool: None,
                    fc: None,
                    in_elems,
                    out_elems: (batch * f * o * o) as u64,
                });
                channels = *f;
                spatial = o;
            }
            LayerSpec::MaxPool {
                window,
                stride,
                pad,
            }
            | LayerSpec::AvgPool {
                window,
                stride,
                pad,
            } => {
                assert!(
                    spatial + 2 * pad >= *window,
                    "{name}: pool window {window} > padded input"
                );
                // Ceil-mode pooling, as Caffe/GoogLeNet use (a partial
                // window at the border still produces an output).
                let o = (spatial + 2 * pad - window).div_ceil(*stride) + 1;
                let kind = if matches!(layer.spec, LayerSpec::MaxPool { .. }) {
                    PoolKindSer::Max
                } else {
                    PoolKindSer::Average
                };
                out.push(LayerInstance {
                    name,
                    kind: InstanceKind::Pool,
                    conv: None,
                    pool: Some((kind, *window, *stride)),
                    fc: None,
                    in_elems,
                    out_elems: (batch * channels * o * o) as u64,
                });
                spatial = o;
            }
            LayerSpec::Relu => {
                out.push(LayerInstance {
                    name,
                    kind: InstanceKind::Relu,
                    conv: None,
                    pool: None,
                    fc: None,
                    in_elems,
                    out_elems: in_elems,
                });
            }
            LayerSpec::Fc { out: f } => {
                let in_features = channels * spatial * spatial;
                out.push(LayerInstance {
                    name,
                    kind: InstanceKind::Fc,
                    conv: None,
                    pool: None,
                    fc: Some((in_features, *f)),
                    in_elems,
                    out_elems: (batch * f) as u64,
                });
                channels = *f;
                spatial = 1;
            }
            LayerSpec::Inception { branches } => {
                let mut total_c = 0;
                let mut branch_spatial = spatial;
                for (i, branch) in branches.iter().enumerate() {
                    let (bc, bs) = walk_sequence(
                        branch,
                        batch,
                        channels,
                        spatial,
                        &format!("{name}/b{i}"),
                        out,
                    );
                    total_c += bc;
                    branch_spatial = bs;
                }
                let concat_elems = (batch * total_c * branch_spatial * branch_spatial) as u64;
                out.push(LayerInstance {
                    name: format!("{name}/concat"),
                    kind: InstanceKind::Concat,
                    conv: None,
                    pool: None,
                    fc: None,
                    in_elems: concat_elems,
                    out_elems: concat_elems,
                });
                channels = total_c;
                spatial = branch_spatial;
            }
            LayerSpec::Softmax => {
                out.push(LayerInstance {
                    name,
                    kind: InstanceKind::Softmax,
                    conv: None,
                    pool: None,
                    fc: None,
                    in_elems,
                    out_elems: in_elems,
                });
            }
        }
    }
    (channels, spatial)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_model() -> ModelSpec {
        ModelSpec {
            name: "tiny".into(),
            input_channels: 1,
            input_size: 28,
            layers: vec![
                NamedLayer::new(
                    "conv1",
                    LayerSpec::Conv {
                        out: 6,
                        kernel: 5,
                        stride: 1,
                        pad: 0,
                    },
                ),
                NamedLayer::new("relu1", LayerSpec::Relu),
                NamedLayer::new(
                    "pool1",
                    LayerSpec::MaxPool {
                        window: 2,
                        stride: 2,
                        pad: 0,
                    },
                ),
                NamedLayer::new("fc1", LayerSpec::Fc { out: 10 }),
                NamedLayer::new("prob", LayerSpec::Softmax),
            ],
        }
    }

    #[test]
    fn walker_resolves_shapes() {
        let inst = walk(&tiny_model(), 4);
        assert_eq!(inst.len(), 5);
        // conv1: 28 → 24, 6 channels.
        let conv = inst[0].conv.unwrap();
        assert_eq!(conv.output(), 24);
        assert_eq!(conv.filters, 6);
        assert_eq!(conv.channels, 1);
        // pool1: 24 → 12.
        assert_eq!(inst[2].out_elems, 4 * 6 * 12 * 12);
        // fc1 consumes 6·12·12 features.
        assert_eq!(inst[3].fc, Some((6 * 12 * 12, 10)));
    }

    #[test]
    fn inception_branches_concat_channels() {
        let model = ModelSpec {
            name: "mini-inception".into(),
            input_channels: 8,
            input_size: 16,
            layers: vec![NamedLayer::new(
                "inc",
                LayerSpec::Inception {
                    branches: vec![
                        vec![NamedLayer::new(
                            "c1",
                            LayerSpec::Conv {
                                out: 4,
                                kernel: 1,
                                stride: 1,
                                pad: 0,
                            },
                        )],
                        vec![NamedLayer::new(
                            "c3",
                            LayerSpec::Conv {
                                out: 6,
                                kernel: 3,
                                stride: 1,
                                pad: 1,
                            },
                        )],
                    ],
                },
            )],
        };
        let inst = walk(&model, 2);
        // two branch convs + one concat
        assert_eq!(inst.len(), 3);
        assert_eq!(inst[2].kind, InstanceKind::Concat);
        // channels 4 + 6 = 10 at spatial 16
        assert_eq!(inst[2].out_elems, 2 * 10 * 16 * 16);
    }

    #[test]
    #[should_panic(expected = "invalid conv")]
    fn rejects_impossible_conv() {
        let model = ModelSpec {
            name: "bad".into(),
            input_channels: 1,
            input_size: 4,
            layers: vec![NamedLayer::new(
                "conv",
                LayerSpec::Conv {
                    out: 1,
                    kernel: 9,
                    stride: 1,
                    pad: 0,
                },
            )],
        };
        walk(&model, 1);
    }
}
