//! Property-based tests for the model walker and synthetic data.

use gcnn_models::data::synthetic_digits;
use gcnn_models::layer::{walk, InstanceKind, LayerSpec, ModelSpec, NamedLayer};
use proptest::prelude::*;

/// Random small sequential CNNs (conv/relu/pool chains ending in FC).
fn arb_model() -> impl Strategy<Value = ModelSpec> {
    let stage = (1usize..16, 1usize..4, any::<bool>()).prop_map(|(f, k, pool)| (f, k, pool));
    (2usize..5, proptest::collection::vec(stage, 1..4)).prop_map(|(input_scale, stages)| {
        let input_size = 8 * input_scale;
        let mut layers = Vec::new();
        for (i, (f, k, pool)) in stages.into_iter().enumerate() {
            layers.push(NamedLayer::new(
                format!("conv{i}"),
                LayerSpec::Conv {
                    out: f,
                    kernel: 2 * k + 1,
                    stride: 1,
                    pad: k,
                },
            ));
            layers.push(NamedLayer::new(format!("relu{i}"), LayerSpec::Relu));
            if pool {
                layers.push(NamedLayer::new(
                    format!("pool{i}"),
                    LayerSpec::MaxPool {
                        window: 2,
                        stride: 2,
                        pad: 0,
                    },
                ));
            }
        }
        layers.push(NamedLayer::new("fc", LayerSpec::Fc { out: 10 }));
        ModelSpec {
            name: "random".into(),
            input_channels: 3,
            input_size,
            layers,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Element counts chain: each layer's input elements equal the
    /// previous layer's output elements.
    #[test]
    fn walker_elements_chain(model in arb_model(), batch in 1usize..5) {
        let instances = walk(&model, batch);
        for pair in instances.windows(2) {
            prop_assert_eq!(
                pair[0].out_elems,
                pair[1].in_elems,
                "{} → {}",
                pair[0].name.clone(),
                pair[1].name.clone()
            );
        }
    }

    /// Conv instances carry valid configurations consistent with their
    /// element counts.
    #[test]
    fn walker_conv_configs_consistent(model in arb_model(), batch in 1usize..4) {
        for inst in walk(&model, batch) {
            if inst.kind == InstanceKind::Conv {
                let cfg = inst.conv.expect("conv config");
                prop_assert!(cfg.is_valid());
                prop_assert_eq!(inst.in_elems, cfg.input_shape().len() as u64);
                prop_assert_eq!(inst.out_elems, cfg.output_shape().len() as u64);
            }
        }
    }

    /// Element counts scale exactly linearly with the batch.
    #[test]
    fn walker_linear_in_batch(model in arb_model()) {
        let one = walk(&model, 1);
        let four = walk(&model, 4);
        prop_assert_eq!(one.len(), four.len());
        for (a, b) in one.iter().zip(&four) {
            prop_assert_eq!(4 * a.in_elems, b.in_elems, "{}", a.name.clone());
            prop_assert_eq!(4 * a.out_elems, b.out_elems, "{}", a.name.clone());
        }
    }

    /// Synthetic datasets: deterministic, labeled in range, batchable.
    #[test]
    fn dataset_invariants(n in 1usize..64, size in 4usize..20, classes in 1usize..8, seed in 0u64..1000) {
        let d = synthetic_digits(n, size, classes, seed);
        prop_assert_eq!(d.len(), n);
        prop_assert!(d.labels.iter().all(|&l| l < classes));
        let d2 = synthetic_digits(n, size, classes, seed);
        prop_assert_eq!(&d.images, &d2.images);
        // Pixel values bounded: signal ∈ [0,1] plus ±0.25 noise.
        prop_assert!(d.images.as_slice().iter().all(|&x| (-0.5..=1.5).contains(&x)));
    }
}
