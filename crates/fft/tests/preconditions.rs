//! Debug-build precondition tests for the butterfly dispatchers:
//! mismatched half-slices or a short twiddle table must trip the
//! `debug_assert!` guards before any butterfly runs. Gated on
//! `debug_assertions` because release CI compiles the asserts away.

#![cfg(debug_assertions)]

use gcnn_fft::simd::{butterflies_dif, butterflies_dit, wide_butterflies};
use gcnn_tensor::complex::Complex32;

#[test]
#[should_panic]
fn dit_rejects_half_slice_mismatch() {
    let mut a = [Complex32::ZERO; 8];
    let mut b = [Complex32::ZERO; 6];
    let tw = [Complex32::ONE; 8];
    butterflies_dit(&mut a, &mut b, &tw, 1, wide_butterflies());
}

#[test]
#[should_panic]
fn dit_rejects_short_twiddle_table() {
    let mut a = [Complex32::ZERO; 8];
    let mut b = [Complex32::ZERO; 8];
    let tw = [Complex32::ONE; 4];
    butterflies_dit(&mut a, &mut b, &tw, 1, wide_butterflies());
}

#[test]
#[should_panic]
fn dif_rejects_half_slice_mismatch() {
    let mut a = [Complex32::ZERO; 8];
    let mut b = [Complex32::ZERO; 6];
    let tw = [Complex32::ONE; 8];
    butterflies_dif(&mut a, &mut b, &tw, 1, wide_butterflies());
}

#[test]
#[should_panic]
fn dif_rejects_strided_short_twiddle_table() {
    let mut a = [Complex32::ZERO; 8];
    let mut b = [Complex32::ZERO; 8];
    // stride 2 needs tw coverage past (span − 1)·2 = 14.
    let tw = [Complex32::ONE; 8];
    butterflies_dif(&mut a, &mut b, &tw, 2, wide_butterflies());
}
