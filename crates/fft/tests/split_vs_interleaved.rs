//! Split-complex layout vs the interleaved reference.
//!
//! The batch-major split engine (`split::fft_lanes_inplace`, the split
//! rfft, the split kernels in `simd`) must agree with the interleaved
//! `Complex32` implementations on randomized inputs, including odd lane
//! counts and remainder vector tails, non-contiguous (strided) batches,
//! and both transform directions. Tolerances follow the GEMM suite's
//! convention: FMA contraction and reassociation legally perturb the
//! last bits and the divergence grows with the reduction depth, so the
//! budget is `max(small_abs·scale, ulps(~2·depth + 16))` rather than a
//! flat epsilon.
//!
//! The final test pins the dispatch contract: with the table forced to
//! scalar, every new split dispatcher is *bit-identical* to its
//! directly-invoked scalar body (mirroring
//! `gemm/tests/simd_vs_scalar.rs`).

use gcnn_fft::plan::FftPlan;
use gcnn_fft::rfft::RfftPlan;
use gcnn_fft::{simd, split, Direction, Fft2dPlan};
use gcnn_tensor::simd::Isa;
use gcnn_tensor::Complex32;
use proptest::prelude::*;

/// Distance in units-in-the-last-place between two finite f32s.
fn ulp_diff(a: f32, b: f32) -> u32 {
    if a == b {
        return 0;
    }
    fn key(x: f32) -> i64 {
        let bits = x.to_bits() as i32;
        (if bits < 0 {
            i32::MIN.wrapping_sub(bits)
        } else {
            bits
        }) as i64
    }
    (key(a) - key(b)).unsigned_abs().min(u32::MAX as u64) as u32
}

/// Closeness for reassociated reductions of depth `depth` over values
/// of magnitude ~`scale`.
fn close(a: f32, b: f32, depth: usize, scale: f32) -> bool {
    (a - b).abs() <= 1e-5 * scale.max(1.0) * (depth as f32).sqrt().max(1.0)
        || ulp_diff(a, b) <= 2 * depth as u32 + 16
}

fn lcg_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The split 2-D rfft equals an independent interleaved full 2-D
    /// FFT (row-column `dit` over `Complex32`), bin for bin over the
    /// Hermitian half-spectrum. `forward_into` routes through the split
    /// engine whenever SIMD dispatch is active, so on a SIMD host this
    /// is split-vs-interleaved; under `GCNN_FORCE_SCALAR=1` it pins the
    /// interleaved path against itself.
    #[test]
    fn rfft_matches_full_2d_fft(
        log2n in 1u32..7,
        seed in 0u64..1u64 << 32,
    ) {
        let n = 1usize << log2n;
        let half = n / 2 + 1;
        let plane = lcg_vec(n * n, seed);

        let plan = RfftPlan::cached(n);
        let mut spec = vec![Complex32::ZERO; plan.spectrum_len()];
        plan.forward_into(&plane, &mut spec);

        let full = Fft2dPlan::new(n, n).forward_real(&plane);
        // The inputs sum coherently at the DC bin: scale ~ n².
        let scale = n as f32 * n as f32;
        for r in 0..n {
            for c in 0..half {
                let got = spec[r * half + c];
                let want = full[r * n + c];
                prop_assert!(
                    close(got.re, want.re, 4 * n, scale)
                        && close(got.im, want.im, 4 * n, scale),
                    "n {n} bin ({r},{c}): {got:?} vs {want:?}"
                );
            }
        }
    }

    /// Forward→inverse through the split batch entry points recovers
    /// the input.
    #[test]
    fn split_batch_roundtrip(
        log2n in 1u32..7,
        count in 1usize..5,
        seed in 0u64..1u64 << 32,
    ) {
        let n = 1usize << log2n;
        let plan = RfftPlan::cached(n);
        let spec_len = plan.spectrum_len();
        let x = lcg_vec(count * n * n, seed);

        let mut sre = vec![0.0f32; count * spec_len];
        let mut sim = vec![0.0f32; count * spec_len];
        gcnn_fft::rfft_forward_batch_split(&plan, &x, &mut sre, &mut sim);
        let mut back = vec![0.0f32; x.len()];
        gcnn_fft::rfft_inverse_batch_split(&plan, &sre, &sim, &mut back);

        for (i, (a, b)) in x.iter().zip(&back).enumerate() {
            prop_assert!(close(*a, *b, 4 * n, n as f32), "elem {i}: {a} vs {b}");
        }
    }

    /// Strided (non-contiguous) batches equal the dense batch on the
    /// covered cells and never touch the gap cells.
    #[test]
    fn strided_batches_match_dense_and_preserve_gaps(
        log2n in 1u32..6,
        count in 1usize..4,
        plane_gap in 0usize..9,
        spec_gap in 0usize..9,
        seed in 0u64..1u64 << 32,
    ) {
        let n = 1usize << log2n;
        let plan = RfftPlan::cached(n);
        let (plane_len, spec_len) = (n * n, plan.spectrum_len());
        let (ps, ss) = (plane_len + plane_gap, spec_len + spec_gap);
        let x = lcg_vec(count * plane_len, seed);

        let mut dense = vec![Complex32::ZERO; count * spec_len];
        gcnn_fft::rfft_forward_batch(&plan, &x, &mut dense);

        let mut gapped = vec![5.5f32; (count - 1) * ps + plane_len];
        for p in 0..count {
            gapped[p * ps..p * ps + plane_len]
                .copy_from_slice(&x[p * plane_len..(p + 1) * plane_len]);
        }
        let sentinel = Complex32::new(-7.0, 7.0);
        let mut spectra = vec![sentinel; (count - 1) * ss + spec_len];
        gcnn_fft::rfft_forward_batch_strided(&plan, &gapped, ps, &mut spectra, ss, count);

        for p in 0..count {
            for k in 0..spec_len {
                // Identical call sequence per transform: exact match.
                prop_assert_eq!(spectra[p * ss + k], dense[p * spec_len + k],
                    "plane {} bin {}", p, k);
            }
            if p + 1 < count {
                for g in spec_len..ss {
                    prop_assert_eq!(spectra[p * ss + g], sentinel, "gap {} of plane {}", g, p);
                }
            }
        }

        let mut out = vec![-2.25f32; (count - 1) * ps + plane_len];
        gcnn_fft::rfft_inverse_batch_strided(&plan, &spectra, ss, &mut out, ps, count);
        for p in 0..count {
            for i in 0..plane_len {
                let (a, b) = (out[p * ps + i], x[p * plane_len + i]);
                prop_assert!(close(a, b, 4 * n, n as f32), "plane {p}[{i}]: {a} vs {b}");
            }
            if p + 1 < count {
                for g in plane_len..ps {
                    prop_assert_eq!(out[p * ps + g], -2.25f32, "gap {} of plane {}", g, p);
                }
            }
        }
    }

    /// The lane engine at an arbitrary (odd, remainder-producing) lane
    /// count equals one interleaved transform per lane, both directions.
    #[test]
    fn lane_engine_matches_per_lane_interleaved(
        log2n in 1u32..7,
        lanes in 1usize..20,
        inverse in any::<bool>(),
        seed in 0u64..1u64 << 32,
    ) {
        let n = 1usize << log2n;
        let plan = FftPlan::cached(n);
        let dir = if inverse { Direction::Inverse } else { Direction::Forward };
        let re0 = lcg_vec(n * lanes, seed);
        let im0 = lcg_vec(n * lanes, seed ^ 0x5a5a);

        let mut re = re0.clone();
        let mut im = im0.clone();
        split::fft_lanes_inplace(&mut re, &mut im, &plan, dir, lanes);

        for l in 0..lanes {
            let mut line: Vec<Complex32> = (0..n)
                .map(|r| Complex32::new(re0[r * lanes + l], im0[r * lanes + l]))
                .collect();
            gcnn_fft::dit::fft_inplace(&mut line, &plan, dir);
            for r in 0..n {
                let (gr, gi) = (re[r * lanes + l], im[r * lanes + l]);
                let w = line[r];
                prop_assert!(
                    close(gr, w.re, 4 * n, n as f32) && close(gi, w.im, 4 * n, n as f32),
                    "lane {l} row {r}: ({gr},{gi}) vs {w:?}"
                );
            }
        }
    }

    /// Interleave→deinterleave round-trips bit-exactly at every length
    /// (vector body + scalar tail), and matches the scalar bodies.
    #[test]
    fn interleave_roundtrip_any_length(
        len in 0usize..70,
        seed in 0u64..1u64 << 32,
    ) {
        let isa = simd::split_isa();
        let re = lcg_vec(len, seed);
        let im = lcg_vec(len, seed ^ 0x77);
        let mut z = vec![Complex32::ZERO; len];
        simd::interleave(&re, &im, &mut z, isa);
        let mut zs = vec![Complex32::ZERO; len];
        simd::interleave_scalar(&re, &im, &mut zs);
        prop_assert_eq!(&z, &zs);

        let mut re2 = vec![0.0f32; len];
        let mut im2 = vec![0.0f32; len];
        simd::deinterleave(&z, &mut re2, &mut im2, isa);
        prop_assert_eq!(&re, &re2);
        prop_assert_eq!(&im, &im2);
    }

    /// The dispatched transpose equals the scalar blocked transpose on
    /// arbitrary (including non-multiple-of-8) shapes — pure data
    /// movement, so bit-exact.
    #[test]
    fn transpose_matches_scalar_any_shape(
        rows in 1usize..40,
        cols in 1usize..40,
        seed in 0u64..1u64 << 32,
    ) {
        let src = lcg_vec(rows * cols, seed);
        let mut a = vec![0.0f32; rows * cols];
        simd::transpose_f32(&src, rows, cols, &mut a, simd::split_isa());
        let mut b = vec![0.0f32; rows * cols];
        simd::transpose_f32_scalar(&src, rows, cols, &mut b);
        prop_assert_eq!(a, b);
    }

    /// The split complex MAC equals per-element interleaved complex
    /// arithmetic at every length and conjugation flag.
    #[test]
    fn cmac_split_matches_complex_mac(
        len in 0usize..70,
        conj_b in any::<bool>(),
        seed in 0u64..1u64 << 32,
    ) {
        let ar = lcg_vec(len, seed);
        let ai = lcg_vec(len, seed ^ 0x1);
        let br = lcg_vec(len, seed ^ 0x2);
        let bi = lcg_vec(len, seed ^ 0x3);
        let or0 = lcg_vec(len, seed ^ 0x4);
        let oi0 = lcg_vec(len, seed ^ 0x5);

        let mut or_ = or0.clone();
        let mut oi = oi0.clone();
        simd::cmac_split(&ar, &ai, &br, &bi, conj_b, &mut or_, &mut oi, simd::split_isa());

        for j in 0..len {
            let a = Complex32::new(ar[j], ai[j]);
            let b = Complex32::new(br[j], bi[j]);
            let b = if conj_b { b.conj() } else { b };
            let want = Complex32::new(or0[j], oi0[j]) + a * b;
            prop_assert!(
                close(or_[j], want.re, 4, 4.0) && close(oi[j], want.im, 4, 4.0),
                "elem {j}: ({}, {}) vs {want:?}", or_[j], oi[j]
            );
        }
    }
}

/// The honored override, for every new split kernel: with the dispatch
/// table forced to scalar, each dispatcher is bit-identical to its
/// directly-invoked scalar body.
#[test]
fn forced_scalar_split_kernels_are_bit_identical() {
    let lanes = 37; // odd: exercises every remainder path
    let plan = FftPlan::cached(16);
    let (tw_re, tw_im) = plan.table_split();

    let was_scalar = gcnn_tensor::simd::isa() == Isa::Scalar;
    gcnn_tensor::simd::set_force_scalar(true);
    let isa = simd::split_isa();
    assert_eq!(isa, Isa::Scalar, "force_scalar not honored by split_isa");

    // Lane butterflies (broadcast twiddle), DIT and DIF.
    let seeds = [11u64, 12, 13, 14];
    let [r0, i0, r1, i1] = seeds.map(|s| lcg_vec(lanes, s));
    for dif in [false, true] {
        let (mut ar, mut ai, mut br, mut bi) = (r0.clone(), i0.clone(), r1.clone(), i1.clone());
        let (mut ars, mut ais, mut brs, mut bis) = (r0.clone(), i0.clone(), r1.clone(), i1.clone());
        if dif {
            simd::lane_butterflies_dif(&mut ar, &mut ai, &mut br, &mut bi, 0.6, -0.8, isa);
            simd::lane_butterflies_dif_scalar(&mut ars, &mut ais, &mut brs, &mut bis, 0.6, -0.8);
        } else {
            simd::lane_butterflies_dit(&mut ar, &mut ai, &mut br, &mut bi, 0.6, -0.8, isa);
            simd::lane_butterflies_dit_scalar(&mut ars, &mut ais, &mut brs, &mut bis, 0.6, -0.8);
        }
        assert_eq!(
            (ar, ai, br, bi),
            (ars, ais, brs, bis),
            "lane butterflies dif={dif}"
        );
    }

    // Per-butterfly-twiddle split butterflies, DIT and DIF, both
    // conjugation flags.
    let span = 8;
    for dif in [false, true] {
        for conj_w in [false, true] {
            let (mut ar, mut ai, mut br, mut bi) = (
                lcg_vec(span, 21),
                lcg_vec(span, 22),
                lcg_vec(span, 23),
                lcg_vec(span, 24),
            );
            let (mut ars, mut ais, mut brs, mut bis) =
                (ar.clone(), ai.clone(), br.clone(), bi.clone());
            if dif {
                simd::butterflies_dif_split(
                    &mut ar, &mut ai, &mut br, &mut bi, tw_re, tw_im, 1, conj_w, isa,
                );
                simd::butterflies_dif_split_scalar(
                    &mut ars, &mut ais, &mut brs, &mut bis, tw_re, tw_im, 1, conj_w,
                );
            } else {
                simd::butterflies_dit_split(
                    &mut ar, &mut ai, &mut br, &mut bi, tw_re, tw_im, 1, conj_w, isa,
                );
                simd::butterflies_dit_split_scalar(
                    &mut ars, &mut ais, &mut brs, &mut bis, tw_re, tw_im, 1, conj_w,
                );
            }
            assert_eq!(
                (ar, ai, br, bi),
                (ars, ais, brs, bis),
                "split butterflies dif={dif} conj={conj_w}"
            );
        }
    }

    // Layout kernels.
    let re = lcg_vec(lanes, 31);
    let im = lcg_vec(lanes, 32);
    let mut z = vec![Complex32::ZERO; lanes];
    simd::interleave(&re, &im, &mut z, isa);
    let mut zs = vec![Complex32::ZERO; lanes];
    simd::interleave_scalar(&re, &im, &mut zs);
    assert_eq!(z, zs, "interleave");

    let (mut dr, mut di) = (vec![0.0f32; lanes], vec![0.0f32; lanes]);
    simd::deinterleave(&z, &mut dr, &mut di, isa);
    let (mut drs, mut dis) = (vec![0.0f32; lanes], vec![0.0f32; lanes]);
    simd::deinterleave_scalar(&z, &mut drs, &mut dis);
    assert_eq!((dr, di), (drs, dis), "deinterleave");

    let (rows, cols) = (13, 21);
    let src = lcg_vec(rows * cols, 33);
    let mut t = vec![0.0f32; rows * cols];
    simd::transpose_f32(&src, rows, cols, &mut t, isa);
    let mut ts = vec![0.0f32; rows * cols];
    simd::transpose_f32_scalar(&src, rows, cols, &mut ts);
    assert_eq!(t, ts, "transpose_f32");

    // Frequency-domain MAC.
    for conj_b in [false, true] {
        let (mut or_, mut oi) = (lcg_vec(lanes, 41), lcg_vec(lanes, 42));
        let (mut ors, mut ois) = (or_.clone(), oi.clone());
        simd::cmac_split(&r0, &i0, &r1, &i1, conj_b, &mut or_, &mut oi, isa);
        simd::cmac_split_scalar(&r0, &i0, &r1, &i1, conj_b, &mut ors, &mut ois);
        assert_eq!((or_, oi), (ors, ois), "cmac_split conj={conj_b}");
    }

    // Restore the state we found so a GCNN_FORCE_SCALAR=1 run stays
    // forced afterwards.
    gcnn_tensor::simd::set_force_scalar(was_scalar);
}
