//! Property-based tests for the FFT substrate.

use gcnn_fft::dft::dft;
use gcnn_fft::dif::dif_fft_inplace;
use gcnn_fft::dit::fft_inplace;
use gcnn_fft::{Direction, Fft2dPlan, FftPlan};
use gcnn_tensor::Complex32;
use proptest::prelude::*;

fn cvec(len: usize) -> impl Strategy<Value = Vec<Complex32>> {
    proptest::collection::vec((-4.0f32..4.0, -4.0f32..4.0), len).prop_map(|v| {
        v.into_iter()
            .map(|(re, im)| Complex32::new(re, im))
            .collect()
    })
}

fn pow2(max_log: u32) -> impl Strategy<Value = usize> {
    (0u32..=max_log).prop_map(|l| 1usize << l)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn dit_roundtrip((n, seed) in pow2(9).prop_flat_map(|n| (Just(n), 0u64..1000))) {
        let _ = seed;
        let plan = FftPlan::new(n);
        let x: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new(((i as u64 + seed) % 17) as f32 - 8.0, ((i as u64 * 3 + seed) % 13) as f32 - 6.0))
            .collect();
        let mut buf = x.clone();
        fft_inplace(&mut buf, &plan, Direction::Forward);
        fft_inplace(&mut buf, &plan, Direction::Inverse);
        for (a, b) in x.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-3 * (n as f32).sqrt());
        }
    }

    #[test]
    fn dit_matches_dft(x in pow2(6).prop_flat_map(cvec)) {
        let n = x.len();
        let plan = FftPlan::new(n);
        let mut fast = x.clone();
        fft_inplace(&mut fast, &plan, Direction::Forward);
        let slow = dft(&x, Direction::Forward);
        let scale = x.iter().map(|z| z.abs()).fold(1.0f32, f32::max);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((*a - *b).abs() < 2e-3 * scale * n as f32, "{a} vs {b}");
        }
    }

    #[test]
    fn dif_equals_dit(x in pow2(8).prop_flat_map(cvec)) {
        let plan = FftPlan::new(x.len());
        let mut a = x.clone();
        fft_inplace(&mut a, &plan, Direction::Forward);
        let mut b = x;
        dif_fft_inplace(&mut b, &plan, Direction::Forward);
        for (p, q) in a.iter().zip(&b) {
            prop_assert!((*p - *q).abs() < 1e-2 * p.abs().max(1.0));
        }
    }

    /// Parseval: ‖x‖² == ‖X‖²/n.
    #[test]
    fn parseval(x in pow2(8).prop_flat_map(cvec)) {
        let n = x.len();
        let plan = FftPlan::new(n);
        let mut f = x.clone();
        fft_inplace(&mut f, &plan, Direction::Forward);
        let et: f32 = x.iter().map(|z| z.norm_sqr()).sum();
        let ef: f32 = f.iter().map(|z| z.norm_sqr()).sum::<f32>() / n as f32;
        prop_assert!((et - ef).abs() < 1e-2 * et.max(1.0), "{et} vs {ef}");
    }

    /// Real input ⇒ Hermitian spectrum: X[k] == conj(X[n−k]).
    #[test]
    fn real_input_hermitian(v in pow2(7).prop_flat_map(|n| proptest::collection::vec(-4.0f32..4.0, n))) {
        let n = v.len();
        let plan = FftPlan::new(n);
        let mut f: Vec<Complex32> = v.iter().map(|&x| Complex32::from_real(x)).collect();
        fft_inplace(&mut f, &plan, Direction::Forward);
        let scale = v.iter().map(|x| x.abs()).fold(1.0f32, f32::max) * n as f32;
        for k in 1..n {
            prop_assert!((f[k] - f[n - k].conj()).abs() < 1e-4 * scale.max(1.0));
        }
    }

    #[test]
    fn fft2d_roundtrip(logh in 0u32..4, logw in 0u32..4, seed in 0u64..500) {
        let (h, w) = (1usize << logh, 1usize << logw);
        let plan = Fft2dPlan::new(h, w);
        let plane: Vec<f32> = (0..h * w).map(|i| (((i as u64 * 31 + seed) % 19) as f32) - 9.0).collect();
        let back = plan.inverse_to_real(plan.forward_real(&plane));
        for (a, b) in plane.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-3 * ((h * w) as f32).sqrt());
        }
    }
}
