//! The O(n²) discrete Fourier transform — reference implementation for
//! testing the fast paths.

use crate::Direction;
use gcnn_tensor::Complex32;

/// Direct evaluation of `X[k] = Σ x[j]·e^(∓2πijk/n)`, scaled by `1/n`
/// for the inverse.
pub fn dft(input: &[Complex32], dir: Direction) -> Vec<Complex32> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        let mut acc = Complex32::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * std::f32::consts::PI * (j * k % n.max(1)) as f32 / n as f32;
            acc = acc.mul_add(x, Complex32::from_polar_unit(theta));
        }
        if matches!(dir, Direction::Inverse) {
            acc = acc / n as f32;
        }
        out.push(acc);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: &[Complex32], b: &[Complex32], tol: f32) -> bool {
        a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    #[test]
    fn impulse_transforms_to_constant() {
        let mut x = vec![Complex32::ZERO; 8];
        x[0] = Complex32::ONE;
        let f = dft(&x, Direction::Forward);
        assert!(f.iter().all(|z| (*z - Complex32::ONE).abs() < 1e-5));
    }

    #[test]
    fn constant_transforms_to_impulse() {
        let x = vec![Complex32::ONE; 8];
        let f = dft(&x, Direction::Forward);
        assert!((f[0] - Complex32::from_real(8.0)).abs() < 1e-4);
        assert!(f[1..].iter().all(|z| z.abs() < 1e-4));
    }

    #[test]
    fn forward_inverse_roundtrip() {
        let x: Vec<Complex32> = (0..16)
            .map(|i| Complex32::new((i as f32).sin(), (i as f32 * 0.7).cos()))
            .collect();
        let back = dft(&dft(&x, Direction::Forward), Direction::Inverse);
        assert!(close(&x, &back, 1e-4));
    }

    #[test]
    fn parseval_energy_conservation() {
        let x: Vec<Complex32> = (0..8)
            .map(|i| Complex32::new(i as f32, -(i as f32)))
            .collect();
        let f = dft(&x, Direction::Forward);
        let et: f32 = x.iter().map(|z| z.norm_sqr()).sum();
        let ef: f32 = f.iter().map(|z| z.norm_sqr()).sum::<f32>() / 8.0;
        assert!((et - ef).abs() < 1e-2 * et);
    }
}
