//! Real-input 2-D transforms with Hermitian half-spectra.
//!
//! fbfft (and cuFFT's R2C/C2R paths) exploit that a real signal's
//! spectrum is Hermitian: `X[k] = conj(X[n−k])`, so only `n/2 + 1`
//! columns of an `n×n` spectrum need to be stored, multiplied and
//! inverse-transformed. This module provides that layout — it halves
//! the Fourier-domain work of the convolution strategy, exactly the
//! saving the real implementations take.
//!
//! Layout: an `n×n` real plane transforms to `n` rows × `(n/2 + 1)`
//! columns of [`Complex32`], row-major. Row transforms run first
//! (real → half row spectrum), then full complex column transforms.

use crate::dit::fft_inplace;
use crate::plan::FftPlan;
use crate::Direction;
use gcnn_tensor::{workspace, Complex32};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Plan for `n×n` real-input transforms (power-of-two `n`).
#[derive(Debug, Clone)]
pub struct RfftPlan {
    n: usize,
    half: usize,
    plan: Arc<FftPlan>,
}

impl RfftPlan {
    /// Build a plan for `n×n` planes. The twiddle/bit-reversal tables
    /// come from the process-wide [`FftPlan`] cache, so plans of one
    /// size share storage.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        RfftPlan {
            n,
            half: n / 2 + 1,
            plan: FftPlan::cached(n),
        }
    }

    /// Fetch the shared plan for `n×n` planes from the process-wide
    /// cache — the cuFFT `cufftPlan2d`-once / execute-many split.
    pub fn cached(n: usize) -> Arc<RfftPlan> {
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<RfftPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("RfftPlan cache poisoned");
        match map.get(&n) {
            Some(plan) => {
                gcnn_trace::counter_inc("fft.rfft_plan_cache.hits");
                Arc::clone(plan)
            }
            None => {
                gcnn_trace::counter_inc("fft.rfft_plan_cache.misses");
                let plan = Arc::new(RfftPlan::new(n));
                map.insert(n, Arc::clone(&plan));
                plan
            }
        }
    }

    /// Spatial size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored spectrum columns: `n/2 + 1`.
    pub fn half_cols(&self) -> usize {
        self.half
    }

    /// Stored spectrum elements per plane: `n · (n/2 + 1)`.
    pub fn spectrum_len(&self) -> usize {
        self.n * self.half
    }

    /// Forward transform of a row-major `n×n` real plane into the
    /// half-spectrum layout, writing into caller-provided storage.
    /// Line scratch comes from the thread-local workspace arena, so
    /// steady-state calls allocate nothing.
    pub fn forward_into(&self, plane: &[f32], spec: &mut [Complex32]) {
        assert_eq!(
            plane.len(),
            self.n * self.n,
            "RfftPlan::forward: plane size"
        );
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "RfftPlan::forward: spectrum size"
        );
        let (n, half) = (self.n, self.half);

        // Row transforms: full complex FFT per row, keep half+1 bins.
        let mut line = workspace::take_c32(n);
        for r in 0..n {
            for (c, slot) in line.iter_mut().enumerate() {
                *slot = Complex32::from_real(plane[r * n + c]);
            }
            fft_inplace(&mut line, &self.plan, Direction::Forward);
            spec[r * half..(r + 1) * half].copy_from_slice(&line[..half]);
        }

        // Column transforms over the retained columns.
        for c in 0..half {
            for r in 0..n {
                line[r] = spec[r * half + c];
            }
            fft_inplace(&mut line, &self.plan, Direction::Forward);
            for r in 0..n {
                spec[r * half + c] = line[r];
            }
        }
    }

    /// Forward transform returning a freshly allocated spectrum.
    pub fn forward(&self, plane: &[f32]) -> Vec<Complex32> {
        let mut spec = vec![Complex32::ZERO; self.spectrum_len()];
        self.forward_into(plane, &mut spec);
        spec
    }

    /// Inverse transform of a half-spectrum into a caller-provided real
    /// plane. The spectrum copy and line scratch come from the
    /// thread-local workspace arena.
    pub fn inverse_into(&self, spectrum: &[Complex32], out: &mut [f32]) {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "RfftPlan::inverse: spectrum size"
        );
        assert_eq!(out.len(), self.n * self.n, "RfftPlan::inverse: plane size");
        let (n, half) = (self.n, self.half);

        // Inverse column transforms on the stored columns (on a scratch
        // copy — the caller's spectrum is borrowed immutably).
        let mut spec = workspace::take_c32(spectrum.len());
        spec.copy_from_slice(spectrum);
        let mut line = workspace::take_c32(n);
        for c in 0..half {
            for r in 0..n {
                line[r] = spec[r * half + c];
            }
            fft_inplace(&mut line, &self.plan, Direction::Inverse);
            for r in 0..n {
                spec[r * half + c] = line[r];
            }
        }

        // Reconstruct each full row by Hermitian symmetry, then inverse
        // row transform and keep the real part.
        for r in 0..n {
            let src = &spec[r * half..(r + 1) * half];
            line[..half].copy_from_slice(src);
            for c in half..n {
                // After the column inverse, each row is the spectrum of
                // a real signal again, hence Hermitian within the row:
                // T[r][n−c] = conj(T[r][c]).
                line[c] = spec[r * half + (n - c)].conj();
            }
            // Column pass already applied its own inverse scaling; only
            // the row direction remains.
            fft_inplace(&mut line, &self.plan, Direction::Inverse);
            for c in 0..n {
                out[r * n + c] = line[c].re;
            }
        }
    }

    /// Inverse transform returning a freshly allocated plane.
    pub fn inverse(&self, spectrum: &[Complex32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n * self.n];
        self.inverse_into(spectrum, &mut out);
        out
    }
}

/// Pointwise half-spectrum product accumulate: `out += a·b` (or
/// `a·conj(b)` for correlation). Works because products of Hermitian
/// spectra stay Hermitian.
pub fn half_pointwise_mac(a: &[Complex32], b: &[Complex32], conj_b: bool, out: &mut [Complex32]) {
    assert_eq!(a.len(), b.len(), "half_pointwise_mac: operand lengths");
    assert_eq!(a.len(), out.len(), "half_pointwise_mac: out length");
    gcnn_tensor::simd::cmac(a, b, conj_b, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fft2dPlan;

    fn plane(n: usize, seed: u64) -> Vec<f32> {
        (0..n * n)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 1000) as f32
                    / 100.0
                    - 5.0
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        for n in [2usize, 4, 8, 16, 32] {
            let p = RfftPlan::new(n);
            let x = plane(n, 1);
            let back = p.inverse(&p.forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matches_full_complex_transform() {
        let n = 16;
        let rp = RfftPlan::new(n);
        let fp = Fft2dPlan::new(n, n);
        let x = plane(n, 2);
        let half = rp.forward(&x);
        let full = fp.forward_real(&x);
        for r in 0..n {
            for c in 0..rp.half_cols() {
                let a = half[r * rp.half_cols() + c];
                let b = full[r * n + c];
                assert!((a - b).abs() < 1e-3, "({r},{c}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let n = 8;
        let p = RfftPlan::new(n);
        let x = vec![0.5f32; n * n];
        let s = p.forward(&x);
        assert!((s[0].re - 32.0).abs() < 1e-3);
        assert!(s[0].im.abs() < 1e-4);
    }

    #[test]
    fn spectrum_is_half_size() {
        let p = RfftPlan::new(64);
        assert_eq!(p.spectrum_len(), 64 * 33);
        assert_eq!(p.forward(&plane(64, 3)).len(), 64 * 33);
    }

    /// Circular correlation through the half-spectrum equals the full
    /// spectrum result.
    #[test]
    fn correlation_through_half_spectrum() {
        let n = 8;
        let rp = RfftPlan::new(n);
        let fp = Fft2dPlan::new(n, n);
        let a = plane(n, 4);
        let b = plane(n, 5);

        // Half-spectrum path.
        let fa = rp.forward(&a);
        let fb = rp.forward(&b);
        let mut prod = vec![Complex32::ZERO; fa.len()];
        half_pointwise_mac(&fa, &fb, true, &mut prod);
        let via_half = rp.inverse(&prod);

        // Full-spectrum path.
        let ga = fp.forward_real(&a);
        let gb = fp.forward_real(&b);
        let mut full = vec![Complex32::ZERO; ga.len()];
        crate::fft2d::pointwise_mac(&ga, &gb, true, &mut full);
        let via_full = fp.inverse_to_real(full);

        for (x, y) in via_half.iter().zip(&via_full) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "plane size")]
    fn forward_checks_length() {
        RfftPlan::new(8).forward(&[0.0; 63]);
    }
}
