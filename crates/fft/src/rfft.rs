//! Real-input 2-D transforms with Hermitian half-spectra.
//!
//! fbfft (and cuFFT's R2C/C2R paths) exploit that a real signal's
//! spectrum is Hermitian: `X[k] = conj(X[n−k])`, so only `n/2 + 1`
//! columns of an `n×n` spectrum need to be stored, multiplied and
//! inverse-transformed. This module provides that layout — it halves
//! the Fourier-domain work of the convolution strategy, exactly the
//! saving the real implementations take.
//!
//! Layout: an `n×n` real plane transforms to `n` rows × `(n/2 + 1)`
//! columns of [`Complex32`], row-major. Row transforms run first
//! (real → half row spectrum), then full complex column transforms.
//!
//! Two engines implement that contract. With SIMD dispatch active the
//! plane goes through the **batch-major split-complex** engine
//! ([`crate::split`]): a blocked transpose loads the plane into lane
//! layout, one [`crate::split::fft_lanes_inplace`] pass transforms all
//! `n` rows at once, a second transpose + lane pass transforms the
//! `n/2 + 1` retained columns — every butterfly a broadcast-twiddle FMA
//! over contiguous lanes. The split-plane spectrum (`re`/`im` at
//! `[r·half + c]`) is the native product format; the interleaved
//! [`Complex32`] API converts at the boundary only. Under scalar
//! dispatch (`GCNN_FORCE_SCALAR=1` or no SIMD) the original
//! line-at-a-time interleaved path runs instead — it is the reference
//! implementation and the forced-scalar oracle, selected at the same
//! `isa()` dispatch point as every other kernel in the workspace.

use crate::dit::fft_inplace;
use crate::plan::{FftPlan, PlanLru, PLAN_CACHE_CAP};
use crate::{simd, split, Direction};
use gcnn_tensor::{workspace, Complex32};
use std::sync::{Arc, Mutex, OnceLock};

/// Plan for `n×n` real-input transforms (power-of-two `n`).
#[derive(Debug, Clone)]
pub struct RfftPlan {
    n: usize,
    half: usize,
    plan: Arc<FftPlan>,
}

impl RfftPlan {
    /// Build a plan for `n×n` planes. The twiddle/bit-reversal tables
    /// come from the process-wide [`FftPlan`] cache, so plans of one
    /// size share storage.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        RfftPlan {
            n,
            half: n / 2 + 1,
            plan: FftPlan::cached(n),
        }
    }

    /// Fetch the shared plan for `n×n` planes from the process-wide
    /// cache — the cuFFT `cufftPlan2d`-once / execute-many split.
    /// Entries are LRU-bounded at [`PLAN_CACHE_CAP`] so plan memory
    /// stays bounded under many-size workloads.
    pub fn cached(n: usize) -> Arc<RfftPlan> {
        static CACHE: OnceLock<Mutex<PlanLru<Arc<RfftPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(PlanLru::new(PLAN_CACHE_CAP)));
        let mut lru = cache.lock().expect("RfftPlan cache poisoned");
        match lru.get(n) {
            Some(plan) => {
                gcnn_trace::counter_inc("fft.rfft_plan_cache.hits");
                plan
            }
            None => {
                gcnn_trace::counter_inc("fft.rfft_plan_cache.misses");
                let plan = Arc::new(RfftPlan::new(n));
                if lru.insert(n, Arc::clone(&plan)) {
                    gcnn_trace::counter_inc("fft.rfft_plan_cache.evictions");
                }
                plan
            }
        }
    }

    /// Spatial size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Stored spectrum columns: `n/2 + 1`.
    pub fn half_cols(&self) -> usize {
        self.half
    }

    /// Stored spectrum elements per plane: `n · (n/2 + 1)`.
    pub fn spectrum_len(&self) -> usize {
        self.n * self.half
    }

    /// Forward transform of a row-major `n×n` real plane into the
    /// half-spectrum layout, writing into caller-provided storage.
    /// Scratch comes from the thread-local workspace arena, so
    /// steady-state calls allocate nothing. Routes through the
    /// batch-major split engine under SIMD dispatch, the interleaved
    /// reference path under scalar dispatch.
    pub fn forward_into(&self, plane: &[f32], spec: &mut [Complex32]) {
        assert_eq!(
            plane.len(),
            self.n * self.n,
            "RfftPlan::forward: plane size"
        );
        assert_eq!(
            spec.len(),
            self.spectrum_len(),
            "RfftPlan::forward: spectrum size"
        );
        if split::split_enabled() {
            // One checkout for both planes: the per-checkout arena cost
            // is measurable against a small transform.
            let mut planes2 = workspace::take_f32(2 * self.spectrum_len());
            let (sre, sim) = planes2.split_at_mut(self.spectrum_len());
            self.forward_split_into(plane, sre, sim);
            simd::interleave(sre, sim, spec, simd::split_isa());
        } else {
            self.forward_into_interleaved(plane, spec);
        }
    }

    /// The interleaved line-at-a-time forward path: reference
    /// implementation and forced-scalar oracle.
    fn forward_into_interleaved(&self, plane: &[f32], spec: &mut [Complex32]) {
        let (n, half) = (self.n, self.half);

        // Row transforms: full complex FFT per row, keep half+1 bins.
        let mut line = workspace::take_c32(n);
        for r in 0..n {
            for (c, slot) in line.iter_mut().enumerate() {
                *slot = Complex32::from_real(plane[r * n + c]);
            }
            fft_inplace(&mut line, &self.plan, Direction::Forward);
            spec[r * half..(r + 1) * half].copy_from_slice(&line[..half]);
        }

        // Column transforms over the retained columns.
        for c in 0..half {
            for r in 0..n {
                line[r] = spec[r * half + c];
            }
            fft_inplace(&mut line, &self.plan, Direction::Forward);
            for r in 0..n {
                spec[r * half + c] = line[r];
            }
        }
    }

    /// Forward transform straight into **split-complex** spectrum
    /// planes (`re`/`im` at `[r·half + c]`) — the native format of the
    /// frequency-domain product stage; no interleaved [`Complex32`]
    /// materializes. Two lane-engine passes joined by blocked SIMD
    /// transposes:
    ///
    /// 1. transpose the real plane into bin-major lane layout
    ///    (`buf[c·n + r]`), imaginary plane zero;
    /// 2. one [`split::fft_lanes_inplace`] pass = all `n` row
    ///    transforms at once (bins `c`, lanes `r`);
    /// 3. keep bins `c < half` — a contiguous prefix in this layout —
    ///    and transpose them into `[r·half + c]`;
    /// 4. a second lane pass = all `half` column transforms (bins `r`,
    ///    lanes `c`).
    pub fn forward_split_into(&self, plane: &[f32], sre: &mut [f32], sim: &mut [f32]) {
        assert_eq!(
            plane.len(),
            self.n * self.n,
            "RfftPlan::forward_split: plane size"
        );
        assert_eq!(
            sre.len(),
            self.spectrum_len(),
            "RfftPlan::forward_split: re plane size"
        );
        assert_eq!(
            sim.len(),
            self.spectrum_len(),
            "RfftPlan::forward_split: im plane size"
        );
        // No per-plane trace span: at small n the span bookkeeping is a
        // measurable fraction of the whole transform, and every caller
        // is already inside a batch-level `fft.*` span.
        let (n, half) = (self.n, self.half);
        let isa = simd::split_isa();

        let mut bufs2 = workspace::take_f32(2 * n * n);
        let (buf_re, buf_im) = bufs2.split_at_mut(n * n);
        simd::transpose_f32(plane, n, n, buf_re, isa);
        buf_im.fill(0.0);
        split::fft_lanes_inplace(buf_re, buf_im, &self.plan, Direction::Forward, n);

        // Bins c < half are the first half·n floats — the Hermitian
        // truncation is free in lane layout.
        simd::transpose_f32(&buf_re[..half * n], half, n, sre, isa);
        simd::transpose_f32(&buf_im[..half * n], half, n, sim, isa);
        split::fft_lanes_inplace(sre, sim, &self.plan, Direction::Forward, half);
    }

    /// Forward transform returning a freshly allocated spectrum.
    pub fn forward(&self, plane: &[f32]) -> Vec<Complex32> {
        let mut spec = vec![Complex32::ZERO; self.spectrum_len()];
        self.forward_into(plane, &mut spec);
        spec
    }

    /// Inverse transform of a half-spectrum into a caller-provided real
    /// plane. Scratch comes from the thread-local workspace arena.
    /// Routes like [`Self::forward_into`].
    pub fn inverse_into(&self, spectrum: &[Complex32], out: &mut [f32]) {
        assert_eq!(
            spectrum.len(),
            self.spectrum_len(),
            "RfftPlan::inverse: spectrum size"
        );
        assert_eq!(out.len(), self.n * self.n, "RfftPlan::inverse: plane size");
        if split::split_enabled() {
            let mut planes2 = workspace::take_f32(2 * self.spectrum_len());
            let (sre, sim) = planes2.split_at_mut(self.spectrum_len());
            simd::deinterleave(spectrum, sre, sim, simd::split_isa());
            // The deinterleaved scratch is ours: run the column pass in
            // place instead of paying `inverse_split_into`'s defensive
            // spectrum copy.
            self.inverse_split_inplace(sre, sim, out);
        } else {
            self.inverse_into_interleaved(spectrum, out);
        }
    }

    /// The interleaved line-at-a-time inverse path: reference
    /// implementation and forced-scalar oracle.
    fn inverse_into_interleaved(&self, spectrum: &[Complex32], out: &mut [f32]) {
        let (n, half) = (self.n, self.half);

        // Inverse column transforms on the stored columns (on a scratch
        // copy — the caller's spectrum is borrowed immutably).
        let mut spec = workspace::take_c32(spectrum.len());
        spec.copy_from_slice(spectrum);
        let mut line = workspace::take_c32(n);
        for c in 0..half {
            for r in 0..n {
                line[r] = spec[r * half + c];
            }
            fft_inplace(&mut line, &self.plan, Direction::Inverse);
            for r in 0..n {
                spec[r * half + c] = line[r];
            }
        }

        // Reconstruct each full row by Hermitian symmetry, then inverse
        // row transform and keep the real part.
        for r in 0..n {
            let src = &spec[r * half..(r + 1) * half];
            line[..half].copy_from_slice(src);
            for c in half..n {
                // After the column inverse, each row is the spectrum of
                // a real signal again, hence Hermitian within the row:
                // T[r][n−c] = conj(T[r][c]).
                line[c] = spec[r * half + (n - c)].conj();
            }
            // Column pass already applied its own inverse scaling; only
            // the row direction remains.
            fft_inplace(&mut line, &self.plan, Direction::Inverse);
            for c in 0..n {
                out[r * n + c] = line[c].re;
            }
        }
    }

    /// Inverse transform from **split-complex** spectrum planes into a
    /// real plane — the mirror of [`Self::forward_split_into`]: a lane
    /// pass inverts the `half` stored columns, Hermitian symmetry
    /// reconstructs the missing bins as whole-row block copies (bin
    /// `c ≥ half` of a row is `conj` of bin `n − c`, which in lane
    /// layout is a contiguous `n`-float row with the imaginary plane
    /// negated), a second lane pass inverts all `n` rows, and a final
    /// transpose drops the (numerically zero) imaginary plane.
    pub fn inverse_split_into(&self, sre: &[f32], sim: &[f32], out: &mut [f32]) {
        assert_eq!(
            sre.len(),
            self.spectrum_len(),
            "RfftPlan::inverse_split: re plane size"
        );
        assert_eq!(
            sim.len(),
            self.spectrum_len(),
            "RfftPlan::inverse_split: im plane size"
        );
        assert_eq!(
            out.len(),
            self.n * self.n,
            "RfftPlan::inverse_split: plane size"
        );
        // Column inverses run on a scratch copy — the caller's spectrum
        // is borrowed immutably. Callers that own their spectrum planes
        // (the interleaved wrapper, the conv pipelines) use
        // [`Self::inverse_split_inplace`] and skip this copy.
        let mut cols2 = workspace::take_f32(2 * self.spectrum_len());
        let (col_re, col_im) = cols2.split_at_mut(self.spectrum_len());
        col_re.copy_from_slice(sre);
        col_im.copy_from_slice(sim);
        self.inverse_split_inplace(col_re, col_im, out);
    }

    /// [`Self::inverse_split_into`] minus the defensive spectrum copy:
    /// the column lane pass runs **in place** on the caller's spectrum
    /// planes, destroying them. For callers whose split spectra are
    /// scratch they own anyway, this removes a `2·n·(n/2+1)`-float copy
    /// per plane from the hot path.
    pub fn inverse_split_inplace(&self, sre: &mut [f32], sim: &mut [f32], out: &mut [f32]) {
        assert_eq!(
            sre.len(),
            self.spectrum_len(),
            "RfftPlan::inverse_split: re plane size"
        );
        assert_eq!(
            sim.len(),
            self.spectrum_len(),
            "RfftPlan::inverse_split: im plane size"
        );
        assert_eq!(
            out.len(),
            self.n * self.n,
            "RfftPlan::inverse_split: plane size"
        );
        // No per-plane trace span — same reasoning as the forward path.
        let (n, half) = (self.n, self.half);
        let isa = simd::split_isa();

        // Column inverses in place: bins r over lanes c.
        split::fft_lanes_inplace(sre, sim, &self.plan, Direction::Inverse, half);

        // Rebuild full rows in lane layout (bins c over lanes r).
        let mut rows2 = workspace::take_f32(2 * n * n);
        let (row_re, row_im) = rows2.split_at_mut(n * n);
        simd::transpose_f32(sre, n, half, &mut row_re[..half * n], isa);
        simd::transpose_f32(sim, n, half, &mut row_im[..half * n], isa);
        for c in half..n {
            // After the column inverse each row is a real signal's
            // spectrum again, hence Hermitian within the row:
            // T[r][c] = conj(T[r][n − c]).
            let src = (n - c) * n;
            let dst = c * n;
            row_re.copy_within(src..src + n, dst);
            row_im.copy_within(src..src + n, dst);
            gcnn_tensor::simd::sscal(-1.0, &mut row_im[dst..dst + n]);
        }
        split::fft_lanes_inplace(row_re, row_im, &self.plan, Direction::Inverse, n);

        // Back to row-major; the imaginary plane is zero up to fp noise
        // and is simply not transposed out.
        simd::transpose_f32(row_re, n, n, out, isa);
    }

    /// Inverse transform returning a freshly allocated plane.
    pub fn inverse(&self, spectrum: &[Complex32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.n * self.n];
        self.inverse_into(spectrum, &mut out);
        out
    }
}

/// Pointwise half-spectrum product accumulate: `out += a·b` (or
/// `a·conj(b)` for correlation). Works because products of Hermitian
/// spectra stay Hermitian.
pub fn half_pointwise_mac(a: &[Complex32], b: &[Complex32], conj_b: bool, out: &mut [Complex32]) {
    assert_eq!(a.len(), b.len(), "half_pointwise_mac: operand lengths");
    assert_eq!(a.len(), out.len(), "half_pointwise_mac: out length");
    gcnn_tensor::simd::cmac(a, b, conj_b, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fft2dPlan;

    fn plane(n: usize, seed: u64) -> Vec<f32> {
        (0..n * n)
            .map(|i| {
                (((i as u64).wrapping_mul(2654435761).wrapping_add(seed * 97)) % 1000) as f32
                    / 100.0
                    - 5.0
            })
            .collect()
    }

    #[test]
    fn roundtrip() {
        for n in [2usize, 4, 8, 16, 32] {
            let p = RfftPlan::new(n);
            let x = plane(n, 1);
            let back = p.inverse(&p.forward(&x));
            for (a, b) in x.iter().zip(&back) {
                assert!((a - b).abs() < 1e-3, "n={n}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matches_full_complex_transform() {
        let n = 16;
        let rp = RfftPlan::new(n);
        let fp = Fft2dPlan::new(n, n);
        let x = plane(n, 2);
        let half = rp.forward(&x);
        let full = fp.forward_real(&x);
        for r in 0..n {
            for c in 0..rp.half_cols() {
                let a = half[r * rp.half_cols() + c];
                let b = full[r * n + c];
                assert!((a - b).abs() < 1e-3, "({r},{c}): {a} vs {b}");
            }
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let n = 8;
        let p = RfftPlan::new(n);
        let x = vec![0.5f32; n * n];
        let s = p.forward(&x);
        assert!((s[0].re - 32.0).abs() < 1e-3);
        assert!(s[0].im.abs() < 1e-4);
    }

    #[test]
    fn spectrum_is_half_size() {
        let p = RfftPlan::new(64);
        assert_eq!(p.spectrum_len(), 64 * 33);
        assert_eq!(p.forward(&plane(64, 3)).len(), 64 * 33);
    }

    /// Circular correlation through the half-spectrum equals the full
    /// spectrum result.
    #[test]
    fn correlation_through_half_spectrum() {
        let n = 8;
        let rp = RfftPlan::new(n);
        let fp = Fft2dPlan::new(n, n);
        let a = plane(n, 4);
        let b = plane(n, 5);

        // Half-spectrum path.
        let fa = rp.forward(&a);
        let fb = rp.forward(&b);
        let mut prod = vec![Complex32::ZERO; fa.len()];
        half_pointwise_mac(&fa, &fb, true, &mut prod);
        let via_half = rp.inverse(&prod);

        // Full-spectrum path.
        let ga = fp.forward_real(&a);
        let gb = fp.forward_real(&b);
        let mut full = vec![Complex32::ZERO; ga.len()];
        crate::fft2d::pointwise_mac(&ga, &gb, true, &mut full);
        let via_full = fp.inverse_to_real(full);

        for (x, y) in via_half.iter().zip(&via_full) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    #[should_panic(expected = "plane size")]
    fn forward_checks_length() {
        RfftPlan::new(8).forward(&[0.0; 63]);
    }
}
