//! Batch-major split-complex transforms — the fbfft layout.
//!
//! The interleaved path ([`crate::dit`]) transforms one line at a time:
//! every complex multiply pays a shuffle, spans below the vector width
//! fall scalar, and the 2-D rfft gathers columns element by element.
//! This module stores `lanes` simultaneous transforms as two f32 planes
//! with **bin-major** layout — `re[bin·lanes + lane]` — so one butterfly
//! applies a single broadcast twiddle across `lanes` contiguous floats:
//! pure FMA, no shuffle, and every stage (including span 1) runs at
//! full vector width. That is fbfft's "transform many rows per pass"
//! design (PAPERS.md arXiv:1412.7580) mapped onto CPU vectors; the
//! batch dimension the lanes come from is the paper's first sweep axis.
//!
//! [`fft_lanes_inplace`] is the whole engine; the 2-D real transforms
//! in [`crate::rfft`] are two lane passes joined by blocked SIMD
//! transposes.

use crate::plan::FftPlan;
use crate::{simd, Direction};
use gcnn_tensor::simd::Isa;

/// True when the split batch-major engine should run. Scalar dispatch
/// (no SIMD, or `GCNN_FORCE_SCALAR=1`) keeps the interleaved
/// line-at-a-time path, which stays the reference implementation and
/// the forced-scalar oracle — same selection point as every other
/// kernel in the workspace.
#[inline]
pub fn split_enabled() -> bool {
    !matches!(gcnn_tensor::simd::isa(), Isa::Scalar)
}

/// Bit-reversal permutation over transform bins: swaps whole lane rows
/// (`lanes` contiguous floats per bin), so even the permutation runs as
/// block copies instead of per-element swaps.
pub(crate) fn bitrev_rows(re: &mut [f32], im: &mut [f32], plan: &FftPlan, lanes: usize) {
    for (i, &j) in plan.bitrev_table().iter().enumerate() {
        let j = j as usize;
        if i < j {
            let (lo, hi) = re.split_at_mut(j * lanes);
            lo[i * lanes..i * lanes + lanes].swap_with_slice(&mut hi[..lanes]);
            let (lo, hi) = im.split_at_mut(j * lanes);
            lo[i * lanes..i * lanes + lanes].swap_with_slice(&mut hi[..lanes]);
        }
    }
}

/// In-place radix-2 DIT over `lanes` simultaneous transforms in
/// bin-major split layout: `re[bin·lanes + lane]`, `im[bin·lanes +
/// lane]`, natural bin order in and out. `Direction::Inverse` applies
/// the usual `1/n` scaling.
///
/// Equivalent to `lanes` calls of [`crate::dit::fft_inplace`] on the
/// individual transforms (the property suite pins this), but every
/// butterfly is a broadcast-twiddle FMA across contiguous lanes.
pub fn fft_lanes_inplace(
    re: &mut [f32],
    im: &mut [f32],
    plan: &FftPlan,
    dir: Direction,
    lanes: usize,
) {
    let n = plan.len();
    assert_eq!(re.len(), n * lanes, "fft_lanes_inplace: re plane size");
    assert_eq!(im.len(), n * lanes, "fft_lanes_inplace: im plane size");
    if lanes == 0 || n <= 1 {
        return;
    }
    bitrev_rows(re, im, plan, lanes);
    // One dispatch read and one split-table borrow per transform pass;
    // each stage then runs as a single kernel call with the whole block
    // × butterfly-row schedule inside the dispatch boundary
    // ([`simd::lane_stage_dit`]), instead of one dispatched call per
    // `lanes`-float row.
    let isa = simd::split_isa();
    let (tw_re, tw_im) = plan.table_split();
    let conj_w = dir == Direction::Inverse;
    // Fused double stages (the radix-4 data flow) as long as two whole
    // stages remain, then at most one single stage for odd log2(n).
    let mut span = 1usize;
    while span * 4 <= n {
        let stride_a = n / (span * 2);
        let stride_b = n / (span * 4);
        simd::lane_stage2_dit(
            re, im, n, lanes, span, stride_a, stride_b, tw_re, tw_im, conj_w, isa,
        );
        span *= 4;
    }
    if span * 2 <= n {
        let stride = n / (span * 2);
        simd::lane_stage_dit(re, im, n, lanes, span, stride, tw_re, tw_im, conj_w, isa);
    }
    if conj_w {
        let s = 1.0 / n as f32;
        gcnn_tensor::simd::sscal(s, re);
        gcnn_tensor::simd::sscal(s, im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dit::fft_inplace;
    use gcnn_tensor::Complex32;

    fn lane_signal(n: usize, lanes: usize, seed: f32) -> (Vec<f32>, Vec<f32>) {
        let re: Vec<f32> = (0..n * lanes)
            .map(|i| (i as f32 * seed + 0.2).sin())
            .collect();
        let im: Vec<f32> = (0..n * lanes)
            .map(|i| (i as f32 * (seed + 0.13) + 0.7).cos())
            .collect();
        (re, im)
    }

    /// The lane engine equals `lanes` independent interleaved
    /// transforms, both directions, including odd lane counts that
    /// force remainder handling in every kernel.
    #[test]
    fn lanes_match_per_transform_fft() {
        for n in [2usize, 4, 8, 16, 64] {
            let plan = FftPlan::new(n);
            for lanes in [1usize, 3, 8, 33] {
                for dir in [Direction::Forward, Direction::Inverse] {
                    let (mut re, mut im) = lane_signal(n, lanes, 0.37);
                    // Reference: transform each lane separately through
                    // the interleaved path.
                    let mut expect: Vec<Vec<Complex32>> = (0..lanes)
                        .map(|l| {
                            let mut line: Vec<Complex32> = (0..n)
                                .map(|bin| Complex32::new(re[bin * lanes + l], im[bin * lanes + l]))
                                .collect();
                            fft_inplace(&mut line, &plan, dir);
                            line
                        })
                        .collect();
                    fft_lanes_inplace(&mut re, &mut im, &plan, dir, lanes);
                    for l in 0..lanes {
                        for bin in 0..n {
                            let want = expect[l].remove(0);
                            let got = Complex32::new(re[bin * lanes + l], im[bin * lanes + l]);
                            assert!(
                                (got - want).abs() < 1e-3 * (1.0 + want.abs()),
                                "n {n} lanes {lanes} {dir:?} lane {l} bin {bin}: {got:?} vs {want:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    /// Forward then inverse is the identity (up to fp error).
    #[test]
    fn lanes_roundtrip() {
        let n = 32;
        let lanes = 17;
        let plan = FftPlan::new(n);
        let (re0, im0) = lane_signal(n, lanes, 0.19);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        fft_lanes_inplace(&mut re, &mut im, &plan, Direction::Forward, lanes);
        fft_lanes_inplace(&mut re, &mut im, &plan, Direction::Inverse, lanes);
        for i in 0..n * lanes {
            assert!((re[i] - re0[i]).abs() < 1e-4, "re[{i}]");
            assert!((im[i] - im0[i]).abs() < 1e-4, "im[{i}]");
        }
    }

    /// Row-block bit reversal is an involution and matches the
    /// element-wise permutation.
    #[test]
    fn bitrev_rows_matches_permutation() {
        let n = 16;
        let lanes = 5;
        let plan = FftPlan::new(n);
        let (re0, im0) = lane_signal(n, lanes, 0.29);
        let (mut re, mut im) = (re0.clone(), im0.clone());
        bitrev_rows(&mut re, &mut im, &plan, lanes);
        for (i, &j) in plan.bitrev_table().iter().enumerate() {
            for l in 0..lanes {
                assert_eq!(re[i * lanes + l], re0[j as usize * lanes + l]);
            }
        }
        bitrev_rows(&mut re, &mut im, &plan, lanes);
        assert_eq!(re, re0);
        assert_eq!(im, im0);
    }

    #[test]
    fn size_one_is_identity() {
        let plan = FftPlan::new(1);
        let mut re = vec![2.5f32; 4];
        let mut im = vec![-1.5f32; 4];
        fft_lanes_inplace(&mut re, &mut im, &plan, Direction::Forward, 4);
        assert_eq!(re, vec![2.5f32; 4]);
        fft_lanes_inplace(&mut re, &mut im, &plan, Direction::Inverse, 4);
        assert_eq!(im, vec![-1.5f32; 4]);
    }
}
