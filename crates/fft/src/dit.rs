//! Iterative radix-2 decimation-in-time transform.
//!
//! Bit-reverse the input, then run `log2(n)` butterfly stages of growing
//! span. This is the textbook Cooley–Tukey schedule, the one a generic
//! cuFFT-style library (the Theano-fft path) uses.

use crate::plan::FftPlan;
use crate::Direction;
use gcnn_tensor::Complex32;

/// In-place radix-2 DIT FFT. Input in natural order, output in natural
/// order. Inverse is scaled by `1/n`.
///
/// ```
/// use gcnn_fft::{FftPlan, Direction, dit::fft_inplace};
/// use gcnn_tensor::Complex32;
///
/// let plan = FftPlan::new(8);
/// let mut x = vec![Complex32::ZERO; 8];
/// x[0] = Complex32::ONE; // impulse → flat spectrum
/// fft_inplace(&mut x, &plan, Direction::Forward);
/// assert!(x.iter().all(|z| (*z - Complex32::ONE).abs() < 1e-6));
/// ```
pub fn fft_inplace(data: &mut [Complex32], plan: &FftPlan, dir: Direction) {
    let n = plan.len();
    assert_eq!(data.len(), n, "fft_inplace: buffer length");
    if n <= 1 {
        return;
    }

    plan.bitrev_permute(data);

    // One dispatch-table read for the whole transform, not per butterfly.
    let wide = crate::simd::wide_butterflies();
    let tw = plan.table(dir);

    let mut span = 1; // half-size of the butterflies at this stage
    while span < n {
        let stride = n / (span * 2); // twiddle index stride
        for start in (0..n).step_by(span * 2) {
            let (a, b) = data[start..start + 2 * span].split_at_mut(span);
            crate::simd::butterflies_dit(a, b, tw, stride, wide);
        }
        span *= 2;
    }

    if matches!(dir, Direction::Inverse) {
        crate::simd::scale(data, 1.0 / n as f32);
    }
}

/// In-place radix-2 DIT FFT over **split-complex** planes (`re`/`im`
/// separate). Same schedule as [`fft_inplace`], but every butterfly
/// block runs through [`crate::simd::butterflies_dit_split`], which
/// loads twiddles straight from the plan's split tables — the twiddle
/// multiply is pure FMA with no per-element shuffle. Natural order in
/// and out; inverse scaled by `1/n`.
pub fn fft_split_inplace(re: &mut [f32], im: &mut [f32], plan: &FftPlan, dir: Direction) {
    let n = plan.len();
    assert_eq!(re.len(), n, "fft_split_inplace: re length");
    assert_eq!(im.len(), n, "fft_split_inplace: im length");
    if n <= 1 {
        return;
    }

    // A single transform is the lanes = 1 case of the row permutation.
    crate::split::bitrev_rows(re, im, plan, 1);

    let isa = crate::simd::split_isa();
    let (tw_re, tw_im) = plan.table_split();
    let conj_w = matches!(dir, Direction::Inverse);

    let mut span = 1;
    while span < n {
        let stride = n / (span * 2);
        for start in (0..n).step_by(span * 2) {
            let (ar, br) = re[start..start + 2 * span].split_at_mut(span);
            let (ai, bi) = im[start..start + 2 * span].split_at_mut(span);
            crate::simd::butterflies_dit_split(ar, ai, br, bi, tw_re, tw_im, stride, conj_w, isa);
        }
        span *= 2;
    }

    if conj_w {
        let s = 1.0 / n as f32;
        gcnn_tensor::simd::sscal(s, re);
        gcnn_tensor::simd::sscal(s, im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;

    fn close(a: &[Complex32], b: &[Complex32], tol: f32) -> bool {
        a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    fn signal(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * 0.37).sin(), (i as f32 * 0.91).cos()))
            .collect()
    }

    #[test]
    fn matches_reference_dft() {
        for n in [1usize, 2, 4, 8, 16, 64, 256] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let mut fast = x.clone();
            fft_inplace(&mut fast, &plan, Direction::Forward);
            let slow = dft(&x, Direction::Forward);
            assert!(close(&fast, &slow, 1e-3 * (n as f32)), "n={n}");
        }
    }

    #[test]
    fn forward_inverse_roundtrip() {
        for n in [2usize, 8, 32, 128, 512] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let mut buf = x.clone();
            fft_inplace(&mut buf, &plan, Direction::Forward);
            fft_inplace(&mut buf, &plan, Direction::Inverse);
            assert!(close(&buf, &x, 1e-4 * (n as f32).sqrt()), "n={n}");
        }
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let y: Vec<Complex32> = signal(n).iter().map(|z| z.conj()).collect();

        let mut fx = x.clone();
        fft_inplace(&mut fx, &plan, Direction::Forward);
        let mut fy = y.clone();
        fft_inplace(&mut fy, &plan, Direction::Forward);

        let mut fxy: Vec<Complex32> = x.iter().zip(&y).map(|(a, b)| *a + *b).collect();
        fft_inplace(&mut fxy, &plan, Direction::Forward);

        let sum: Vec<Complex32> = fx.iter().zip(&fy).map(|(a, b)| *a + *b).collect();
        assert!(close(&fxy, &sum, 1e-3));
    }

    #[test]
    fn time_shift_is_phase_ramp() {
        // Shifting the input circularly by 1 multiplies bin k by W_n^k.
        let n = 16;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let mut shifted = x.clone();
        shifted.rotate_right(1);

        let mut fx = x;
        fft_inplace(&mut fx, &plan, Direction::Forward);
        let mut fs = shifted;
        fft_inplace(&mut fs, &plan, Direction::Forward);

        for k in 0..n {
            let theta = -2.0 * std::f32::consts::PI * k as f32 / n as f32;
            let expect = fx[k] * Complex32::from_polar_unit(theta);
            assert!((fs[k] - expect).abs() < 1e-3, "bin {k}");
        }
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn length_mismatch_panics() {
        let plan = FftPlan::new(8);
        let mut data = vec![Complex32::ZERO; 4];
        fft_inplace(&mut data, &plan, Direction::Forward);
    }

    /// The split-plane transform equals the interleaved one on the same
    /// data, both directions.
    #[test]
    fn split_matches_interleaved() {
        for n in [1usize, 2, 8, 64, 256] {
            let plan = FftPlan::new(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let x = signal(n);
                let mut interleaved = x.clone();
                fft_inplace(&mut interleaved, &plan, dir);
                let mut re: Vec<f32> = x.iter().map(|z| z.re).collect();
                let mut im: Vec<f32> = x.iter().map(|z| z.im).collect();
                fft_split_inplace(&mut re, &mut im, &plan, dir);
                for k in 0..n {
                    let got = Complex32::new(re[k], im[k]);
                    assert!(
                        (got - interleaved[k]).abs() < 1e-3 * (n as f32).max(1.0),
                        "n {n} {dir:?} bin {k}"
                    );
                }
            }
        }
    }
}
