//! Radix-2 decimation-in-frequency transform — the fbfft schedule.
//!
//! DIF runs the butterfly stages in shrinking span order on
//! natural-order input and produces bit-reversed output; fbfft's
//! `decimateInFrequency` kernel does exactly this (and fuses the
//! bit-reversal into its register shuffles). We expose both the raw
//! bit-reversed-output stage pipeline and a natural-order wrapper.

use crate::plan::FftPlan;
use crate::Direction;
use gcnn_tensor::Complex32;

/// DIF butterfly stages only: natural-order input → **bit-reversed**
/// output. No scaling.
pub fn dif_stages(data: &mut [Complex32], plan: &FftPlan, dir: Direction) {
    let n = plan.len();
    assert_eq!(data.len(), n, "dif_stages: buffer length");
    if n <= 1 {
        return;
    }

    // One dispatch-table read for the whole transform, not per butterfly.
    let wide = crate::simd::wide_butterflies();
    let tw = plan.table(dir);

    let mut span = n / 2; // half-size of butterflies, shrinking
    while span >= 1 {
        let stride = n / (span * 2);
        for start in (0..n).step_by(span * 2) {
            let (a, b) = data[start..start + 2 * span].split_at_mut(span);
            crate::simd::butterflies_dif(a, b, tw, stride, wide);
        }
        span /= 2;
    }
}

/// Full natural-order DIF FFT: stages + bit-reversal, inverse scaled by
/// `1/n`. Numerically equivalent to [`crate::dit::fft_inplace`]; tested
/// against it.
pub fn dif_fft_inplace(data: &mut [Complex32], plan: &FftPlan, dir: Direction) {
    dif_stages(data, plan, dir);
    plan.bitrev_permute(data);
    if matches!(dir, Direction::Inverse) {
        crate::simd::scale(data, 1.0 / plan.len().max(1) as f32);
    }
}

/// DIF butterfly stages over **split-complex** planes: natural-order
/// input → bit-reversed output, no scaling. The fbfft schedule with the
/// twiddle multiply as pure FMA from the plan's split tables.
pub fn dif_split_stages(re: &mut [f32], im: &mut [f32], plan: &FftPlan, dir: Direction) {
    let n = plan.len();
    assert_eq!(re.len(), n, "dif_split_stages: re length");
    assert_eq!(im.len(), n, "dif_split_stages: im length");
    if n <= 1 {
        return;
    }

    let isa = crate::simd::split_isa();
    let (tw_re, tw_im) = plan.table_split();
    let conj_w = matches!(dir, Direction::Inverse);

    let mut span = n / 2;
    while span >= 1 {
        let stride = n / (span * 2);
        for start in (0..n).step_by(span * 2) {
            let (ar, br) = re[start..start + 2 * span].split_at_mut(span);
            let (ai, bi) = im[start..start + 2 * span].split_at_mut(span);
            crate::simd::butterflies_dif_split(ar, ai, br, bi, tw_re, tw_im, stride, conj_w, isa);
        }
        span /= 2;
    }
}

/// Full natural-order split-plane DIF FFT: stages + bit-reversal,
/// inverse scaled by `1/n`.
pub fn dif_fft_split_inplace(re: &mut [f32], im: &mut [f32], plan: &FftPlan, dir: Direction) {
    dif_split_stages(re, im, plan, dir);
    crate::split::bitrev_rows(re, im, plan, 1);
    if matches!(dir, Direction::Inverse) {
        let s = 1.0 / plan.len().max(1) as f32;
        gcnn_tensor::simd::sscal(s, re);
        gcnn_tensor::simd::sscal(s, im);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft;
    use crate::dit::fft_inplace;

    fn close(a: &[Complex32], b: &[Complex32], tol: f32) -> bool {
        a.iter().zip(b).all(|(x, y)| (*x - *y).abs() < tol)
    }

    fn signal(n: usize) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * 0.53).cos(), (i as f32 * 0.29).sin()))
            .collect()
    }

    #[test]
    fn dif_matches_dit() {
        for n in [1usize, 2, 4, 16, 128] {
            let plan = FftPlan::new(n);
            let x = signal(n);
            let mut a = x.clone();
            fft_inplace(&mut a, &plan, Direction::Forward);
            let mut b = x;
            dif_fft_inplace(&mut b, &plan, Direction::Forward);
            assert!(close(&a, &b, 1e-3 * (n as f32).max(1.0)), "n={n}");
        }
    }

    #[test]
    fn dif_matches_reference() {
        let n = 32;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let mut fast = x.clone();
        dif_fft_inplace(&mut fast, &plan, Direction::Forward);
        let slow = dft(&x, Direction::Forward);
        assert!(close(&fast, &slow, 1e-3 * n as f32));
    }

    #[test]
    fn dif_roundtrip() {
        let n = 64;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let mut buf = x.clone();
        dif_fft_inplace(&mut buf, &plan, Direction::Forward);
        dif_fft_inplace(&mut buf, &plan, Direction::Inverse);
        assert!(close(&buf, &x, 1e-4 * (n as f32).sqrt()));
    }

    /// The split-plane DIF equals the interleaved DIF on the same data.
    #[test]
    fn split_dif_matches_interleaved() {
        for n in [1usize, 4, 32, 128] {
            let plan = FftPlan::new(n);
            for dir in [Direction::Forward, Direction::Inverse] {
                let x = signal(n);
                let mut interleaved = x.clone();
                dif_fft_inplace(&mut interleaved, &plan, dir);
                let mut re: Vec<f32> = x.iter().map(|z| z.re).collect();
                let mut im: Vec<f32> = x.iter().map(|z| z.im).collect();
                dif_fft_split_inplace(&mut re, &mut im, &plan, dir);
                for k in 0..n {
                    let got = Complex32::new(re[k], im[k]);
                    assert!(
                        (got - interleaved[k]).abs() < 1e-3 * (n as f32).max(1.0),
                        "n {n} {dir:?} bin {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn stages_output_is_bitreversed() {
        // dif_stages output, once bit-reverse-permuted, equals the DIT
        // result — i.e. the stages really do emit bit-reversed order.
        let n = 16;
        let plan = FftPlan::new(n);
        let x = signal(n);
        let mut staged = x.clone();
        dif_stages(&mut staged, &plan, Direction::Forward);
        plan.bitrev_permute(&mut staged);
        let mut expect = x;
        fft_inplace(&mut expect, &plan, Direction::Forward);
        assert!(close(&staged, &expect, 1e-3));
    }
}
