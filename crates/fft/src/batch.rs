//! Batched real 2-D transforms over plane sets.
//!
//! Every FFT-convolution pass transforms `b·c` (inputs), `f·c`
//! (filters) or `b·f` (gradients) planes of one size — the paper's
//! fbfft profile is dominated by exactly this batch (Fig. 4f). This
//! module executes the batch rayon-parallel over planes; each worker
//! draws its line/spectrum scratch from its own thread-local
//! [`gcnn_tensor::workspace`] pool, so the batch performs zero heap
//! allocation in steady state regardless of pool width.

use crate::rfft::RfftPlan;
use gcnn_tensor::Complex32;
use rayon::prelude::*;

/// Forward-transform `count` contiguous `n×n` real planes into `count`
/// contiguous half-spectra. `planes.len()` must be `count·n²` and
/// `spectra.len()` must be `count·spectrum_len`; `count` is inferred.
pub fn rfft_forward_batch(plan: &RfftPlan, planes: &[f32], spectra: &mut [Complex32]) {
    let _span = gcnn_trace::span("fft.rfft_forward");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert_eq!(planes.len() % plane_len, 0, "forward_batch: plane size");
    let count = planes.len() / plane_len;
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    assert_eq!(
        spectra.len(),
        count * spec_len,
        "forward_batch: spectra size for {count} planes"
    );
    spectra
        .par_chunks_mut(spec_len)
        .zip(planes.par_chunks(plane_len))
        .for_each(|(spec, plane)| plan.forward_into(plane, spec));
}

/// Inverse-transform `count` contiguous half-spectra into `count`
/// contiguous `n×n` real planes. Sizes as in [`rfft_forward_batch`].
pub fn rfft_inverse_batch(plan: &RfftPlan, spectra: &[Complex32], planes: &mut [f32]) {
    let _span = gcnn_trace::span("fft.rfft_inverse");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert_eq!(spectra.len() % spec_len, 0, "inverse_batch: spectra size");
    let count = spectra.len() / spec_len;
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    assert_eq!(
        planes.len(),
        count * plane_len,
        "inverse_batch: planes size for {count} spectra"
    );
    planes
        .par_chunks_mut(plane_len)
        .zip(spectra.par_chunks(spec_len))
        .for_each(|(plane, spec)| plan.inverse_into(spec, plane));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_tensor::workspace::alloc_scope;

    fn planes(count: usize, n: usize) -> Vec<f32> {
        (0..count * n * n)
            .map(|i| (((i as u64).wrapping_mul(2654435761)) % 1000) as f32 / 100.0 - 5.0)
            .collect()
    }

    #[test]
    fn batch_matches_single_plane_calls() {
        let n = 16;
        let count = 5;
        let plan = RfftPlan::cached(n);
        let x = planes(count, n);

        let mut spectra = vec![Complex32::ZERO; count * plan.spectrum_len()];
        rfft_forward_batch(&plan, &x, &mut spectra);

        for p in 0..count {
            let single = plan.forward(&x[p * n * n..(p + 1) * n * n]);
            let batch = &spectra[p * plan.spectrum_len()..(p + 1) * plan.spectrum_len()];
            for (a, b) in single.iter().zip(batch) {
                assert_eq!(a, b, "plane {p}");
            }
        }
    }

    #[test]
    fn batch_roundtrip() {
        let n = 8;
        let count = 7;
        let plan = RfftPlan::cached(n);
        let x = planes(count, n);

        let mut spectra = vec![Complex32::ZERO; count * plan.spectrum_len()];
        rfft_forward_batch(&plan, &x, &mut spectra);
        let mut back = vec![0.0f32; count * n * n];
        rfft_inverse_batch(&plan, &spectra, &mut back);

        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn second_batch_allocates_nothing() {
        let n = 32;
        let count = 3;
        let plan = RfftPlan::cached(n);
        let x = planes(count, n);
        let mut spectra = vec![Complex32::ZERO; count * plan.spectrum_len()];
        let mut back = vec![0.0f32; count * n * n];

        // Warm the thread-local pools.
        rfft_forward_batch(&plan, &x, &mut spectra);
        rfft_inverse_batch(&plan, &spectra, &mut back);

        let (_, misses) = alloc_scope(|| {
            rfft_forward_batch(&plan, &x, &mut spectra);
            rfft_inverse_batch(&plan, &spectra, &mut back);
        });
        assert_eq!(misses, 0, "steady-state batch FFT hit the allocator");
    }
}
