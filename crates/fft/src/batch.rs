//! Batched real 2-D transforms over plane sets.
//!
//! Every FFT-convolution pass transforms `b·c` (inputs), `f·c`
//! (filters) or `b·f` (gradients) planes of one size — the paper's
//! fbfft profile is dominated by exactly this batch (Fig. 4f). This
//! module executes the batch rayon-parallel over planes; each worker
//! draws its line/spectrum scratch from its own thread-local
//! [`gcnn_tensor::workspace`] pool, so the batch performs zero heap
//! allocation in steady state regardless of pool width.

use crate::rfft::RfftPlan;
use gcnn_tensor::Complex32;
use rayon::prelude::*;

/// Forward-transform `count` contiguous `n×n` real planes into `count`
/// contiguous half-spectra. `planes.len()` must be `count·n²` and
/// `spectra.len()` must be `count·spectrum_len`; `count` is inferred.
pub fn rfft_forward_batch(plan: &RfftPlan, planes: &[f32], spectra: &mut [Complex32]) {
    let _span = gcnn_trace::span("fft.rfft_forward");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert_eq!(planes.len() % plane_len, 0, "forward_batch: plane size");
    let count = planes.len() / plane_len;
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    assert_eq!(
        spectra.len(),
        count * spec_len,
        "forward_batch: spectra size for {count} planes"
    );
    if count == 1 {
        // Single plane: skip the rayon fork/join machinery, whose
        // fixed cost rivals a small transform.
        return plan.forward_into(planes, spectra);
    }
    spectra
        .par_chunks_mut(spec_len)
        .zip(planes.par_chunks(plane_len))
        .for_each(|(spec, plane)| plan.forward_into(plane, spec));
}

/// Inverse-transform `count` contiguous half-spectra into `count`
/// contiguous `n×n` real planes. Sizes as in [`rfft_forward_batch`].
pub fn rfft_inverse_batch(plan: &RfftPlan, spectra: &[Complex32], planes: &mut [f32]) {
    let _span = gcnn_trace::span("fft.rfft_inverse");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert_eq!(spectra.len() % spec_len, 0, "inverse_batch: spectra size");
    let count = spectra.len() / spec_len;
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    assert_eq!(
        planes.len(),
        count * plane_len,
        "inverse_batch: planes size for {count} spectra"
    );
    if count == 1 {
        return plan.inverse_into(spectra, planes);
    }
    planes
        .par_chunks_mut(plane_len)
        .zip(spectra.par_chunks(spec_len))
        .for_each(|(plane, spec)| plan.inverse_into(spec, plane));
}

/// Forward-transform `count` `n×n` real planes laid out at a stride:
/// plane `p` starts at `p·plane_stride`, its spectrum at
/// `p·spec_stride`. Strides may exceed the dense sizes (non-contiguous
/// batches — planes embedded in a larger tensor, aligned spectra);
/// the gap bytes are never read or written.
pub fn rfft_forward_batch_strided(
    plan: &RfftPlan,
    planes: &[f32],
    plane_stride: usize,
    spectra: &mut [Complex32],
    spec_stride: usize,
    count: usize,
) {
    let _span = gcnn_trace::span("fft.rfft_forward");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert!(plane_stride >= plane_len, "forward_strided: plane stride");
    assert!(spec_stride >= spec_len, "forward_strided: spectrum stride");
    if count == 0 {
        return;
    }
    assert!(
        planes.len() >= (count - 1) * plane_stride + plane_len,
        "forward_strided: planes size for {count} planes"
    );
    assert!(
        spectra.len() >= (count - 1) * spec_stride + spec_len,
        "forward_strided: spectra size for {count} planes"
    );
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    if count == 1 {
        return plan.forward_into(&planes[..plane_len], &mut spectra[..spec_len]);
    }
    spectra
        .par_chunks_mut(spec_stride)
        .zip(planes.par_chunks(plane_stride))
        .take(count)
        .for_each(|(spec, plane)| plan.forward_into(&plane[..plane_len], &mut spec[..spec_len]));
}

/// Inverse-transform `count` strided half-spectra into strided real
/// planes. Strides as in [`rfft_forward_batch_strided`].
pub fn rfft_inverse_batch_strided(
    plan: &RfftPlan,
    spectra: &[Complex32],
    spec_stride: usize,
    planes: &mut [f32],
    plane_stride: usize,
    count: usize,
) {
    let _span = gcnn_trace::span("fft.rfft_inverse");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert!(plane_stride >= plane_len, "inverse_strided: plane stride");
    assert!(spec_stride >= spec_len, "inverse_strided: spectrum stride");
    if count == 0 {
        return;
    }
    assert!(
        spectra.len() >= (count - 1) * spec_stride + spec_len,
        "inverse_strided: spectra size for {count} spectra"
    );
    assert!(
        planes.len() >= (count - 1) * plane_stride + plane_len,
        "inverse_strided: planes size for {count} spectra"
    );
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    if count == 1 {
        return plan.inverse_into(&spectra[..spec_len], &mut planes[..plane_len]);
    }
    planes
        .par_chunks_mut(plane_stride)
        .zip(spectra.par_chunks(spec_stride))
        .take(count)
        .for_each(|(plane, spec)| plan.inverse_into(&spec[..spec_len], &mut plane[..plane_len]));
}

/// Forward-transform contiguous planes straight into **split-complex**
/// spectrum planes (`re`/`im` separate, `spectrum_len` floats per
/// plane) — the batch-major entry point of the fbfft-style pipeline:
/// no interleaved [`Complex32`] materializes between transform and the
/// frequency-domain product.
pub fn rfft_forward_batch_split(plan: &RfftPlan, planes: &[f32], sre: &mut [f32], sim: &mut [f32]) {
    let _span = gcnn_trace::span("fft.split.forward_batch");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert_eq!(planes.len() % plane_len, 0, "forward_split: plane size");
    let count = planes.len() / plane_len;
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    assert_eq!(
        sre.len(),
        count * spec_len,
        "forward_split: re size for {count} planes"
    );
    assert_eq!(
        sim.len(),
        count * spec_len,
        "forward_split: im size for {count} planes"
    );
    if count == 1 {
        return plan.forward_split_into(planes, sre, sim);
    }
    sre.par_chunks_mut(spec_len)
        .zip(sim.par_chunks_mut(spec_len))
        .zip(planes.par_chunks(plane_len))
        .for_each(|((re, im), plane)| plan.forward_split_into(plane, re, im));
}

/// Inverse-transform contiguous **split-complex** spectra into real
/// planes — mirror of [`rfft_forward_batch_split`].
pub fn rfft_inverse_batch_split(plan: &RfftPlan, sre: &[f32], sim: &[f32], planes: &mut [f32]) {
    let _span = gcnn_trace::span("fft.split.inverse_batch");
    let plane_len = plan.n() * plan.n();
    let spec_len = plan.spectrum_len();
    assert_eq!(sre.len() % spec_len, 0, "inverse_split: spectra size");
    let count = sre.len() / spec_len;
    gcnn_trace::counter_add("fft.batch_planes", count as u64);
    assert_eq!(sim.len(), sre.len(), "inverse_split: im size");
    assert_eq!(
        planes.len(),
        count * plane_len,
        "inverse_split: planes size for {count} spectra"
    );
    if count == 1 {
        return plan.inverse_split_into(sre, sim, planes);
    }
    planes
        .par_chunks_mut(plane_len)
        .zip(sre.par_chunks(spec_len).zip(sim.par_chunks(spec_len)))
        .for_each(|(plane, (re, im))| plan.inverse_split_into(re, im, plane));
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_tensor::workspace::alloc_scope;

    fn planes(count: usize, n: usize) -> Vec<f32> {
        (0..count * n * n)
            .map(|i| (((i as u64).wrapping_mul(2654435761)) % 1000) as f32 / 100.0 - 5.0)
            .collect()
    }

    #[test]
    fn batch_matches_single_plane_calls() {
        let n = 16;
        let count = 5;
        let plan = RfftPlan::cached(n);
        let x = planes(count, n);

        let mut spectra = vec![Complex32::ZERO; count * plan.spectrum_len()];
        rfft_forward_batch(&plan, &x, &mut spectra);

        for p in 0..count {
            let single = plan.forward(&x[p * n * n..(p + 1) * n * n]);
            let batch = &spectra[p * plan.spectrum_len()..(p + 1) * plan.spectrum_len()];
            for (a, b) in single.iter().zip(batch) {
                assert_eq!(a, b, "plane {p}");
            }
        }
    }

    #[test]
    fn batch_roundtrip() {
        let n = 8;
        let count = 7;
        let plan = RfftPlan::cached(n);
        let x = planes(count, n);

        let mut spectra = vec![Complex32::ZERO; count * plan.spectrum_len()];
        rfft_forward_batch(&plan, &x, &mut spectra);
        let mut back = vec![0.0f32; count * n * n];
        rfft_inverse_batch(&plan, &spectra, &mut back);

        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    /// Strided entry points with stride == dense size equal the
    /// contiguous batch exactly; padded strides leave the gaps intact.
    #[test]
    fn strided_matches_contiguous_and_skips_gaps() {
        let n = 8;
        let count = 3;
        let plan = RfftPlan::cached(n);
        let plane_len = n * n;
        let spec_len = plan.spectrum_len();
        let x = planes(count, n);

        let mut dense = vec![Complex32::ZERO; count * spec_len];
        rfft_forward_batch(&plan, &x, &mut dense);

        // Planes embedded at a +13 stride, spectra at a +7 stride.
        let (ps, ss) = (plane_len + 13, spec_len + 7);
        let mut gapped_planes = vec![9.0f32; (count - 1) * ps + plane_len];
        for p in 0..count {
            gapped_planes[p * ps..p * ps + plane_len]
                .copy_from_slice(&x[p * plane_len..(p + 1) * plane_len]);
        }
        let sentinel = Complex32::new(-77.0, 77.0);
        let mut gapped_spectra = vec![sentinel; (count - 1) * ss + spec_len];
        rfft_forward_batch_strided(&plan, &gapped_planes, ps, &mut gapped_spectra, ss, count);
        for p in 0..count {
            for k in 0..spec_len {
                assert_eq!(
                    gapped_spectra[p * ss + k],
                    dense[p * spec_len + k],
                    "plane {p} bin {k}"
                );
            }
            if p + 1 < count {
                for g in spec_len..ss {
                    assert_eq!(gapped_spectra[p * ss + g], sentinel, "gap written at {p}");
                }
            }
        }

        // And back, through the strided inverse.
        let mut gapped_out = vec![-3.0f32; (count - 1) * ps + plane_len];
        rfft_inverse_batch_strided(&plan, &gapped_spectra, ss, &mut gapped_out, ps, count);
        for p in 0..count {
            for i in 0..plane_len {
                let a = gapped_out[p * ps + i];
                let b = x[p * plane_len + i];
                assert!((a - b).abs() < 1e-3, "plane {p}[{i}]: {a} vs {b}");
            }
            if p + 1 < count {
                for g in plane_len..ps {
                    assert_eq!(gapped_out[p * ps + g], -3.0, "gap written at {p}");
                }
            }
        }
    }

    /// The split batch entry points round-trip and agree with the
    /// interleaved batch bin for bin.
    #[test]
    fn split_batch_matches_interleaved_batch() {
        let n = 16;
        let count = 4;
        let plan = RfftPlan::cached(n);
        let spec_len = plan.spectrum_len();
        let x = planes(count, n);

        let mut spectra = vec![Complex32::ZERO; count * spec_len];
        rfft_forward_batch(&plan, &x, &mut spectra);

        let mut sre = vec![0.0f32; count * spec_len];
        let mut sim = vec![0.0f32; count * spec_len];
        rfft_forward_batch_split(&plan, &x, &mut sre, &mut sim);
        for k in 0..count * spec_len {
            let z = spectra[k];
            let tol = 1e-3 * (1.0 + z.abs());
            assert!(
                (sre[k] - z.re).abs() < tol && (sim[k] - z.im).abs() < tol,
                "bin {k}: ({}, {}) vs {z:?}",
                sre[k],
                sim[k]
            );
        }

        let mut back = vec![0.0f32; x.len()];
        rfft_inverse_batch_split(&plan, &sre, &sim, &mut back);
        for (a, b) in x.iter().zip(&back) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn second_batch_allocates_nothing() {
        let n = 32;
        let count = 3;
        let plan = RfftPlan::cached(n);
        let x = planes(count, n);
        let mut spectra = vec![Complex32::ZERO; count * plan.spectrum_len()];
        let mut back = vec![0.0f32; count * n * n];

        // Warm the thread-local pools.
        rfft_forward_batch(&plan, &x, &mut spectra);
        rfft_inverse_batch(&plan, &spectra, &mut back);

        let (_, misses) = alloc_scope(|| {
            rfft_forward_batch(&plan, &x, &mut spectra);
            rfft_inverse_batch(&plan, &spectra, &mut back);
        });
        assert_eq!(misses, 0, "steady-state batch FFT hit the allocator");
    }
}
