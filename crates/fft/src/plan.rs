//! Twiddle-factor plans and the process-wide plan cache.

use gcnn_tensor::Complex32;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Upper bound on distinct plan sizes each process-wide cache retains.
/// Convolution workloads use a handful of transform sizes; a service
/// that sweeps many shapes must not grow plan memory without bound, so
/// the caches evict least-recently-used entries past this count.
pub const PLAN_CACHE_CAP: usize = 32;

/// Precomputed tables for a radix-2 FFT of one power-of-two size.
///
/// Holds forward twiddles `W_n^k = e^(−2πik/n)` for `k < n/2` in two
/// layouts generated from a single table pass: interleaved
/// [`Complex32`] (plus conjugates for the inverse) for the legacy
/// butterflies, and **split-complex** planes (`re[k]`, `im[k]`) for the
/// batch-major kernels, where the twiddle multiply is pure FMA with no
/// per-element shuffle. The inverse split twiddle is derived in the
/// kernels by negating `im` — no second table. Creating a plan is
/// `O(n)`; transforms reuse it, the same way cuFFT/fbfft plans are
/// created once per layer shape.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// `twiddles[k] = e^(−2πik/n)`, `k ∈ [0, n/2)`.
    forward: Vec<Complex32>,
    /// Conjugate twiddles for the inverse transform.
    inverse: Vec<Complex32>,
    /// Split-complex real plane of the forward table: `cos(−2πk/n)`.
    tw_re: Vec<f32>,
    /// Split-complex imaginary plane of the forward table:
    /// `sin(−2πk/n)`. The inverse table is this negated.
    tw_im: Vec<f32>,
    /// `bitrev[i]` = bit-reversed `i` over `log2n` bits.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Build a plan for size `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    // AUDIT: cold-path — a plan is built once per transform size and cached
    // in the per-thread LRU; steady-state transforms only read it.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FftPlan: size {n} not a power of two");
        let log2n = n.trailing_zeros();
        let half = n / 2;
        // One generation pass feeds every table: interleaved forward,
        // conjugate inverse, and the split re/im planes.
        let mut forward = Vec::with_capacity(half.max(1));
        let mut inverse = Vec::with_capacity(half.max(1));
        let mut tw_re = Vec::with_capacity(half.max(1));
        let mut tw_im = Vec::with_capacity(half.max(1));
        for k in 0..half.max(1) {
            let theta = -2.0 * std::f32::consts::PI * k as f32 / n as f32;
            let w = Complex32::from_polar_unit(theta);
            forward.push(w);
            inverse.push(w.conj());
            tw_re.push(w.re);
            tw_im.push(w.im);
        }
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        FftPlan {
            n,
            log2n,
            forward,
            inverse,
            tw_re,
            tw_im,
            bitrev,
        }
    }

    /// Fetch the shared plan for size `n` from the process-wide cache,
    /// building it on first request.
    ///
    /// A convolution layer transforms thousands of planes of one size;
    /// cuFFT amortizes that by creating the plan once (`cufftPlan2d`)
    /// and executing it per plane. This is the same split: `cached` is
    /// the plan-creation step, [`crate::dit::fft_inplace`] the execute
    /// step. Lock is held only for the map lookup/insert; the `O(n)`
    /// table build happens outside any per-transform path. Entries are
    /// LRU-bounded at [`PLAN_CACHE_CAP`].
    pub fn cached(n: usize) -> Arc<FftPlan> {
        static CACHE: OnceLock<Mutex<PlanLru<Arc<FftPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(PlanLru::new(PLAN_CACHE_CAP)));
        let mut lru = cache.lock().expect("FftPlan cache poisoned");
        match lru.get(n) {
            Some(plan) => {
                gcnn_trace::counter_inc("fft.plan_cache.hits");
                plan
            }
            None => {
                gcnn_trace::counter_inc("fft.plan_cache.misses");
                let plan = Arc::new(FftPlan::new(n));
                if lru.insert(n, Arc::clone(&plan)) {
                    gcnn_trace::counter_inc("fft.plan_cache.evictions");
                }
                plan
            }
        }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// `log2(n)`.
    #[inline]
    pub fn log2n(&self) -> u32 {
        self.log2n
    }

    /// Forward twiddle `W_n^k` for `k < n/2`.
    #[inline]
    pub fn w_forward(&self, k: usize) -> Complex32 {
        self.forward[k]
    }

    /// Inverse twiddle `W_n^{−k}` for `k < n/2`.
    #[inline]
    pub fn w_inverse(&self, k: usize) -> Complex32 {
        self.inverse[k]
    }

    /// The whole twiddle table for one direction (`k < n/2`), so stage
    /// loops and the SIMD butterfly kernels can index it directly
    /// instead of calling [`Self::w_forward`] per butterfly.
    #[inline]
    pub fn table(&self, dir: crate::Direction) -> &[Complex32] {
        match dir {
            crate::Direction::Forward => &self.forward,
            crate::Direction::Inverse => &self.inverse,
        }
    }

    /// The split-complex **forward** twiddle planes `(re, im)`,
    /// `k < n/2`. Inverse-direction kernels negate `im` on the fly
    /// (a sign flip folds into FMA operands; no second table and no
    /// shuffle), so only the forward planes are stored.
    #[inline]
    pub fn table_split(&self) -> (&[f32], &[f32]) {
        (&self.tw_re, &self.tw_im)
    }

    /// Apply the bit-reversal permutation in place.
    pub fn bitrev_permute(&self, data: &mut [Complex32]) {
        debug_assert_eq!(data.len(), self.n, "bitrev_permute: length");
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }

    /// The raw bit-reversal table (`bitrev[i]` = reversed `i`), for the
    /// batch-major row permutation in [`crate::split`].
    #[inline]
    pub fn bitrev_table(&self) -> &[u32] {
        &self.bitrev
    }
}

/// A bounded least-recently-used map from transform size to plan. Kept
/// deliberately tiny: the plan caches see at most a few dozen distinct
/// power-of-two sizes, so a stamp scan on eviction is cheaper than a
/// linked-list LRU and has no unsafe.
#[derive(Debug)]
pub(crate) struct PlanLru<V: Clone> {
    cap: usize,
    tick: u64,
    map: HashMap<usize, (V, u64)>,
}

impl<V: Clone> PlanLru<V> {
    pub(crate) fn new(cap: usize) -> Self {
        assert!(cap > 0, "PlanLru: zero capacity");
        PlanLru {
            cap,
            tick: 0,
            map: HashMap::new(),
        }
    }

    /// Look up `key`, refreshing its recency stamp on hit.
    pub(crate) fn get(&mut self, key: usize) -> Option<V> {
        self.tick += 1;
        let tick = self.tick;
        self.map.get_mut(&key).map(|(v, stamp)| {
            *stamp = tick;
            v.clone()
        })
    }

    /// Insert `key`, evicting the least-recently-used entry when at
    /// capacity. Returns true when an eviction happened.
    pub(crate) fn insert(&mut self, key: usize, value: V) -> bool {
        self.tick += 1;
        let mut evicted = false;
        if self.map.len() >= self.cap && !self.map.contains_key(&key) {
            if let Some(&oldest) = self
                .map
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
            {
                self.map.remove(&oldest);
                evicted = true;
            }
        }
        self.map.insert(key, (value, self.tick));
        evicted
    }

    #[cfg(test)]
    fn len(&self) -> usize {
        self.map.len()
    }

    #[cfg(test)]
    fn contains(&self, key: usize) -> bool {
        self.map.contains_key(&key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_pow2() {
        FftPlan::new(12);
    }

    #[test]
    fn twiddles_on_unit_circle() {
        let p = FftPlan::new(16);
        for k in 0..8 {
            assert!((p.w_forward(k).abs() - 1.0).abs() < 1e-6);
            // inverse twiddle is the conjugate
            assert_eq!(p.w_inverse(k), p.w_forward(k).conj());
        }
        // W^0 = 1, W^{n/4} = −i for forward.
        assert!((p.w_forward(0) - Complex32::ONE).abs() < 1e-6);
        assert!((p.w_forward(4) - Complex32::new(0.0, -1.0)).abs() < 1e-6);
    }

    /// The split planes are the same values as the interleaved table —
    /// one generation pass, two layouts.
    #[test]
    fn split_tables_match_interleaved() {
        let p = FftPlan::new(64);
        let (re, im) = p.table_split();
        assert_eq!(re.len(), 32);
        assert_eq!(im.len(), 32);
        for k in 0..32 {
            assert_eq!(re[k], p.w_forward(k).re, "re[{k}]");
            assert_eq!(im[k], p.w_forward(k).im, "im[{k}]");
            // Inverse = negated imaginary plane, exactly.
            assert_eq!(-im[k], p.w_inverse(k).im, "inv im[{k}]");
        }
    }

    #[test]
    fn bitrev_is_involution() {
        let p = FftPlan::new(32);
        let orig: Vec<Complex32> = (0..32).map(|i| Complex32::from_real(i as f32)).collect();
        let mut data = orig.clone();
        p.bitrev_permute(&mut data);
        assert_ne!(data, orig);
        p.bitrev_permute(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn bitrev_known_order_8() {
        let p = FftPlan::new(8);
        let mut data: Vec<Complex32> = (0..8).map(|i| Complex32::from_real(i as f32)).collect();
        p.bitrev_permute(&mut data);
        let got: Vec<f32> = data.iter().map(|z| z.re).collect();
        assert_eq!(got, vec![0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]);
    }

    #[test]
    fn cached_returns_same_plan() {
        let a = FftPlan::cached(64);
        let b = FftPlan::cached(64);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let c = FftPlan::cached(128);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 128);
    }

    #[test]
    fn size_one_plan() {
        let p = FftPlan::new(1);
        assert!(p.is_empty());
        let mut data = [Complex32::ONE];
        p.bitrev_permute(&mut data);
        assert_eq!(data[0], Complex32::ONE);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = PlanLru::new(2);
        assert!(!lru.insert(8, "a"));
        assert!(!lru.insert(16, "b"));
        // Touch 8 so 16 becomes the eviction victim.
        assert_eq!(lru.get(8), Some("a"));
        assert!(lru.insert(32, "c"));
        assert_eq!(lru.len(), 2);
        assert!(lru.contains(8));
        assert!(!lru.contains(16));
        assert!(lru.contains(32));
    }

    #[test]
    fn lru_reinsert_does_not_evict() {
        let mut lru = PlanLru::new(2);
        lru.insert(8, 1);
        lru.insert(16, 2);
        // Overwriting a resident key must not evict the other entry.
        assert!(!lru.insert(8, 3));
        assert_eq!(lru.get(8), Some(3));
        assert_eq!(lru.get(16), Some(2));
    }

    #[test]
    fn lru_bounds_entry_count() {
        let mut lru = PlanLru::new(4);
        let mut evictions = 0;
        for k in 0..10usize {
            if lru.insert(1 << k, k) {
                evictions += 1;
            }
        }
        assert_eq!(lru.len(), 4);
        assert_eq!(evictions, 6);
    }
}
