//! Twiddle-factor plans and the process-wide plan cache.

use gcnn_tensor::Complex32;
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

/// Precomputed tables for a radix-2 FFT of one power-of-two size.
///
/// Holds forward twiddles `W_n^k = e^(−2πik/n)` for `k < n/2`, their
/// conjugates for the inverse transform, and the bit-reversal
/// permutation. Creating a plan is `O(n)`; transforms reuse it, the same
/// way cuFFT/fbfft plans are created once per layer shape.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// `twiddles[k] = e^(−2πik/n)`, `k ∈ [0, n/2)`.
    forward: Vec<Complex32>,
    /// Conjugate twiddles for the inverse transform.
    inverse: Vec<Complex32>,
    /// `bitrev[i]` = bit-reversed `i` over `log2n` bits.
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Build a plan for size `n`.
    ///
    /// # Panics
    /// Panics if `n` is not a power of two or is zero.
    pub fn new(n: usize) -> Self {
        assert!(n.is_power_of_two(), "FftPlan: size {n} not a power of two");
        let log2n = n.trailing_zeros();
        let half = n / 2;
        let mut forward = Vec::with_capacity(half.max(1));
        let mut inverse = Vec::with_capacity(half.max(1));
        for k in 0..half.max(1) {
            let theta = -2.0 * std::f32::consts::PI * k as f32 / n as f32;
            let w = Complex32::from_polar_unit(theta);
            forward.push(w);
            inverse.push(w.conj());
        }
        let mut bitrev = vec![0u32; n];
        for (i, slot) in bitrev.iter_mut().enumerate() {
            *slot = (i as u32).reverse_bits() >> (32 - log2n.max(1));
        }
        if n == 1 {
            bitrev[0] = 0;
        }
        FftPlan {
            n,
            log2n,
            forward,
            inverse,
            bitrev,
        }
    }

    /// Fetch the shared plan for size `n` from the process-wide cache,
    /// building it on first request.
    ///
    /// A convolution layer transforms thousands of planes of one size;
    /// cuFFT amortizes that by creating the plan once (`cufftPlan2d`)
    /// and executing it per plane. This is the same split: `cached` is
    /// the plan-creation step, [`crate::dit::fft_inplace`] the execute
    /// step. Lock is held only for the map lookup/insert; the `O(n)`
    /// table build happens outside any per-transform path.
    pub fn cached(n: usize) -> Arc<FftPlan> {
        static CACHE: OnceLock<Mutex<HashMap<usize, Arc<FftPlan>>>> = OnceLock::new();
        let cache = CACHE.get_or_init(|| Mutex::new(HashMap::new()));
        let mut map = cache.lock().expect("FftPlan cache poisoned");
        match map.get(&n) {
            Some(plan) => {
                gcnn_trace::counter_inc("fft.plan_cache.hits");
                Arc::clone(plan)
            }
            None => {
                gcnn_trace::counter_inc("fft.plan_cache.misses");
                let plan = Arc::new(FftPlan::new(n));
                map.insert(n, Arc::clone(&plan));
                plan
            }
        }
    }

    /// Transform size.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for the degenerate size-1 plan.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n <= 1
    }

    /// `log2(n)`.
    #[inline]
    pub fn log2n(&self) -> u32 {
        self.log2n
    }

    /// Forward twiddle `W_n^k` for `k < n/2`.
    #[inline]
    pub fn w_forward(&self, k: usize) -> Complex32 {
        self.forward[k]
    }

    /// Inverse twiddle `W_n^{−k}` for `k < n/2`.
    #[inline]
    pub fn w_inverse(&self, k: usize) -> Complex32 {
        self.inverse[k]
    }

    /// The whole twiddle table for one direction (`k < n/2`), so stage
    /// loops and the SIMD butterfly kernels can index it directly
    /// instead of calling [`Self::w_forward`] per butterfly.
    #[inline]
    pub fn table(&self, dir: crate::Direction) -> &[Complex32] {
        match dir {
            crate::Direction::Forward => &self.forward,
            crate::Direction::Inverse => &self.inverse,
        }
    }

    /// Apply the bit-reversal permutation in place.
    pub fn bitrev_permute(&self, data: &mut [Complex32]) {
        debug_assert_eq!(data.len(), self.n, "bitrev_permute: length");
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "not a power of two")]
    fn rejects_non_pow2() {
        FftPlan::new(12);
    }

    #[test]
    fn twiddles_on_unit_circle() {
        let p = FftPlan::new(16);
        for k in 0..8 {
            assert!((p.w_forward(k).abs() - 1.0).abs() < 1e-6);
            // inverse twiddle is the conjugate
            assert_eq!(p.w_inverse(k), p.w_forward(k).conj());
        }
        // W^0 = 1, W^{n/4} = −i for forward.
        assert!((p.w_forward(0) - Complex32::ONE).abs() < 1e-6);
        assert!((p.w_forward(4) - Complex32::new(0.0, -1.0)).abs() < 1e-6);
    }

    #[test]
    fn bitrev_is_involution() {
        let p = FftPlan::new(32);
        let orig: Vec<Complex32> = (0..32).map(|i| Complex32::from_real(i as f32)).collect();
        let mut data = orig.clone();
        p.bitrev_permute(&mut data);
        assert_ne!(data, orig);
        p.bitrev_permute(&mut data);
        assert_eq!(data, orig);
    }

    #[test]
    fn bitrev_known_order_8() {
        let p = FftPlan::new(8);
        let mut data: Vec<Complex32> = (0..8).map(|i| Complex32::from_real(i as f32)).collect();
        p.bitrev_permute(&mut data);
        let got: Vec<f32> = data.iter().map(|z| z.re).collect();
        assert_eq!(got, vec![0.0, 4.0, 2.0, 6.0, 1.0, 5.0, 3.0, 7.0]);
    }

    #[test]
    fn cached_returns_same_plan() {
        let a = FftPlan::cached(64);
        let b = FftPlan::cached(64);
        assert!(std::sync::Arc::ptr_eq(&a, &b));
        let c = FftPlan::cached(128);
        assert!(!std::sync::Arc::ptr_eq(&a, &c));
        assert_eq!(c.len(), 128);
    }

    #[test]
    fn size_one_plan() {
        let p = FftPlan::new(1);
        assert!(p.is_empty());
        let mut data = [Complex32::ONE];
        p.bitrev_permute(&mut data);
        assert_eq!(data[0], Complex32::ONE);
    }
}
