//! Row-column 2-D transforms over complex planes.
//!
//! FFT convolution transforms every `h×w` feature-map plane; the 2-D
//! transform is separable, so we run the 1-D plan over all rows, then
//! over all columns (via a transpose-free strided gather into a scratch
//! column buffer).

use crate::dit::fft_inplace;
use crate::plan::FftPlan;
use crate::Direction;
use gcnn_tensor::{workspace, Complex32};
use std::sync::Arc;

/// Plans for a 2-D power-of-two transform of shape `rows × cols`.
#[derive(Debug, Clone)]
pub struct Fft2dPlan {
    rows: usize,
    cols: usize,
    row_plan: Arc<FftPlan>,
    col_plan: Arc<FftPlan>,
}

impl Fft2dPlan {
    /// Build row and column plans (shared through the process-wide
    /// [`FftPlan`] cache). Both dimensions must be powers of two.
    pub fn new(rows: usize, cols: usize) -> Self {
        Fft2dPlan {
            rows,
            cols,
            row_plan: FftPlan::cached(cols),
            col_plan: FftPlan::cached(rows),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// In-place 2-D transform of a row-major `rows × cols` plane.
    pub fn transform(&self, plane: &mut [Complex32], dir: Direction) {
        assert_eq!(
            plane.len(),
            self.rows * self.cols,
            "Fft2dPlan::transform: plane size"
        );
        // All rows.
        for r in 0..self.rows {
            fft_inplace(
                &mut plane[r * self.cols..(r + 1) * self.cols],
                &self.row_plan,
                dir,
            );
        }
        // All columns via scratch gather (arena scratch: no per-call
        // allocation in steady state).
        let mut colbuf = workspace::take_c32(self.rows);
        for c in 0..self.cols {
            for r in 0..self.rows {
                colbuf[r] = plane[r * self.cols + c];
            }
            fft_inplace(&mut colbuf, &self.col_plan, dir);
            for r in 0..self.rows {
                plane[r * self.cols + c] = colbuf[r];
            }
        }
    }

    /// Transform a real plane: widen to complex, forward-transform.
    pub fn forward_real(&self, plane: &[f32]) -> Vec<Complex32> {
        assert_eq!(
            plane.len(),
            self.rows * self.cols,
            "forward_real: plane size"
        );
        let mut buf: Vec<Complex32> = plane.iter().map(|&x| Complex32::from_real(x)).collect();
        self.transform(&mut buf, Direction::Forward);
        buf
    }

    /// Inverse-transform and take the real part (imaginary residue is
    /// rounding noise when the spectrum came from real data).
    pub fn inverse_to_real(&self, mut spectrum: Vec<Complex32>) -> Vec<f32> {
        self.transform(&mut spectrum, Direction::Inverse);
        spectrum.into_iter().map(|z| z.re).collect()
    }
}

/// Elementwise spectrum product: `out[i] += a[i] · b[i]` (or conjugated
/// `b` for correlation). This is the degenerate 1×1 case of the batched
/// CGEMM the frameworks use; kept here for tests and the simple
/// single-channel path.
pub fn pointwise_mac(a: &[Complex32], b: &[Complex32], conj_b: bool, out: &mut [Complex32]) {
    assert_eq!(a.len(), b.len(), "pointwise_mac: length");
    assert_eq!(a.len(), out.len(), "pointwise_mac: out length");
    gcnn_tensor::simd::cmac(a, b, conj_b, out);
}

/// Split-plane spectrum product: `out += a·b` (or `a·conj(b)`) with all
/// operands as separate re/im planes — the frequency-domain stage of
/// the batch-major pipeline. Pure FMA, no shuffle, and no interleaved
/// [`Complex32`] between the transform and the product: the layout the
/// transforms emit is the layout this consumes.
#[allow(clippy::too_many_arguments)]
pub fn pointwise_mac_split(
    a_re: &[f32],
    a_im: &[f32],
    b_re: &[f32],
    b_im: &[f32],
    conj_b: bool,
    out_re: &mut [f32],
    out_im: &mut [f32],
) {
    assert_eq!(a_re.len(), b_re.len(), "pointwise_mac_split: length");
    assert_eq!(a_re.len(), out_re.len(), "pointwise_mac_split: out length");
    crate::simd::cmac_split(
        a_re,
        a_im,
        b_re,
        b_im,
        conj_b,
        out_re,
        out_im,
        crate::simd::split_isa(),
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The split pointwise stage equals the interleaved one on the same
    /// spectra.
    #[test]
    fn pointwise_split_matches_interleaved() {
        let n = 37;
        let a: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.3).sin(), (i as f32 * 0.7).cos()))
            .collect();
        let b: Vec<Complex32> = (0..n)
            .map(|i| Complex32::new((i as f32 * 0.9).cos(), (i as f32 * 0.4).sin()))
            .collect();
        for conj_b in [false, true] {
            let mut out = vec![Complex32::new(0.5, -0.5); n];
            pointwise_mac(&a, &b, conj_b, &mut out);
            let (a_re, a_im): (Vec<f32>, Vec<f32>) = a.iter().map(|z| (z.re, z.im)).unzip();
            let (b_re, b_im): (Vec<f32>, Vec<f32>) = b.iter().map(|z| (z.re, z.im)).unzip();
            let mut o_re = vec![0.5f32; n];
            let mut o_im = vec![-0.5f32; n];
            pointwise_mac_split(&a_re, &a_im, &b_re, &b_im, conj_b, &mut o_re, &mut o_im);
            for k in 0..n {
                assert!(
                    (o_re[k] - out[k].re).abs() < 1e-5 && (o_im[k] - out[k].im).abs() < 1e-5,
                    "conj {conj_b} bin {k}"
                );
            }
        }
    }

    #[test]
    fn roundtrip_2d() {
        let plan = Fft2dPlan::new(8, 16);
        let plane: Vec<f32> = (0..128).map(|i| ((i * 37) % 23) as f32 - 11.0).collect();
        let spec = plan.forward_real(&plane);
        let back = plan.inverse_to_real(spec);
        for (x, y) in plane.iter().zip(&back) {
            assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn dc_bin_is_sum() {
        let plan = Fft2dPlan::new(4, 4);
        let plane = vec![1.5f32; 16];
        let spec = plan.forward_real(&plane);
        assert!((spec[0] - Complex32::from_real(24.0)).abs() < 1e-4);
        assert!(spec[1..].iter().all(|z| z.abs() < 1e-4));
    }

    #[test]
    fn impulse_spectrum_is_flat() {
        let plan = Fft2dPlan::new(4, 8);
        let mut plane = vec![0.0f32; 32];
        plane[0] = 1.0;
        let spec = plan.forward_real(&plane);
        assert!(spec.iter().all(|z| (*z - Complex32::ONE).abs() < 1e-4));
    }

    /// Circular convolution theorem in 2-D: ifft(fft(a)·fft(b)) equals
    /// the circular convolution computed directly.
    #[test]
    fn convolution_theorem_2d() {
        let (h, w) = (8usize, 8usize);
        let plan = Fft2dPlan::new(h, w);
        let a: Vec<f32> = (0..h * w).map(|i| ((i * 7) % 5) as f32 - 2.0).collect();
        let b: Vec<f32> = (0..h * w).map(|i| ((i * 13) % 3) as f32 - 1.0).collect();

        // Direct circular convolution.
        let mut direct = vec![0.0f32; h * w];
        for oy in 0..h {
            for ox in 0..w {
                let mut acc = 0.0;
                for ky in 0..h {
                    for kx in 0..w {
                        let ay = (oy + h - ky) % h;
                        let ax = (ox + w - kx) % w;
                        acc += a[ay * w + ax] * b[ky * w + kx];
                    }
                }
                direct[oy * w + ox] = acc;
            }
        }

        let fa = plan.forward_real(&a);
        let fb = plan.forward_real(&b);
        let mut prod = vec![Complex32::ZERO; h * w];
        pointwise_mac(&fa, &fb, false, &mut prod);
        let via_fft = plan.inverse_to_real(prod);

        for (x, y) in direct.iter().zip(&via_fft) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    /// Correlation theorem: conjugating one spectrum yields circular
    /// cross-correlation.
    #[test]
    fn correlation_theorem_2d() {
        let (h, w) = (4usize, 4usize);
        let plan = Fft2dPlan::new(h, w);
        let a: Vec<f32> = (0..16).map(|i| (i % 7) as f32).collect();
        let b: Vec<f32> = (0..16).map(|i| ((i * 3) % 5) as f32).collect();

        let mut direct = vec![0.0f32; h * w];
        for oy in 0..h {
            for ox in 0..w {
                let mut acc = 0.0;
                for ky in 0..h {
                    for kx in 0..w {
                        let ay = (oy + ky) % h;
                        let ax = (ox + kx) % w;
                        acc += a[ay * w + ax] * b[ky * w + kx];
                    }
                }
                direct[oy * w + ox] = acc;
            }
        }

        let fa = plan.forward_real(&a);
        let fb = plan.forward_real(&b);
        let mut prod = vec![Complex32::ZERO; h * w];
        pointwise_mac(&fa, &fb, true, &mut prod);
        let via_fft = plan.inverse_to_real(prod);

        for (x, y) in direct.iter().zip(&via_fft) {
            assert!((x - y).abs() < 1e-2, "{x} vs {y}");
        }
    }

    #[test]
    fn rectangular_shapes_supported() {
        let plan = Fft2dPlan::new(2, 32);
        let plane: Vec<f32> = (0..64).map(|i| i as f32).collect();
        let back = plan.inverse_to_real(plan.forward_real(&plane));
        for (x, y) in plane.iter().zip(&back) {
            assert!((x - y).abs() < 1e-3);
        }
    }
}
