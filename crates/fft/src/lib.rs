//! # gcnn-fft
//!
//! A from-scratch radix-2 FFT — the "cuFFT / fbfft" substrate of the
//! gcnn workspace.
//!
//! The FFT-based convolution strategy (paper §II-B) converts spatial
//! convolution into a pointwise Fourier-domain product. fbfft implements
//! the forward transform with a **decimation-in-frequency** (DIF) kernel
//! (`decimateInFrequency` in the paper's Fig. 4f hotspot profile) and the
//! inverse with `decimateInFrequencyInverse`. This crate provides:
//!
//! * [`plan::FftPlan`] — cached twiddle factors + bit-reversal table for
//!   one power-of-two size.
//! * [`dit`] — iterative decimation-in-time transform (used by the
//!   Theano-fft model, which delegates to a generic cuFFT-style plan).
//! * [`dif`] — decimation-in-frequency transform (the fbfft path).
//! * [`split`] — **batch-major split-complex** transforms: separate
//!   re/im planes, many transforms per pass, broadcast-twiddle FMA
//!   butterflies with no shuffles. The SIMD-dispatched rfft and FFT
//!   convolution path run on this engine; the interleaved modules stay
//!   the scalar reference.
//! * [`fft2d`] — row-column 2-D transforms over [`Complex32`] planes.
//! * [`dft`] — the O(n²) reference every fast path is tested against.
//!
//! All transforms are power-of-two only, like fbfft itself — this is the
//! root cause of the paper's Fig. 5b/5d memory fluctuations, which our
//! reproduction inherits by construction.
//!
//! [`Complex32`]: gcnn_tensor::Complex32

pub mod batch;
pub mod dft;
pub mod dif;
pub mod dit;
pub mod fft2d;
pub mod plan;
pub mod rfft;
pub mod simd;
pub mod split;

pub use batch::{
    rfft_forward_batch, rfft_forward_batch_split, rfft_forward_batch_strided, rfft_inverse_batch,
    rfft_inverse_batch_split, rfft_inverse_batch_strided,
};
pub use fft2d::Fft2dPlan;
pub use plan::FftPlan;
pub use rfft::RfftPlan;
pub use split::{fft_lanes_inplace, split_enabled};

/// Direction of a transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Spatial → Fourier.
    Forward,
    /// Fourier → spatial (scaled by `1/n`).
    Inverse,
}

/// FLOPs of one radix-2 complex FFT of size `n`: `5·n·log2(n)`
/// (the standard operation count: 10 real ops per butterfly over
/// `n/2·log2(n)` butterflies).
pub fn fft_flops(n: usize) -> u64 {
    if n <= 1 {
        return 0;
    }
    5 * (n as u64) * (n.trailing_zeros() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flop_model() {
        assert_eq!(fft_flops(1), 0);
        assert_eq!(fft_flops(8), 5 * 8 * 3);
        assert_eq!(fft_flops(1024), 5 * 1024 * 10);
    }
}
