//! SIMD butterfly kernels for the DIT/DIF stage loops.
//!
//! A radix-2 stage applies the same twiddle schedule to every block of
//! `2·span` elements; [`butterflies_dit`] / [`butterflies_dif`] run one
//! block given its two half-slices. The AVX2+FMA bodies process four
//! butterflies (eight interleaved `f32` lanes) per iteration using the
//! classic `addsub(moveldup·x, movehdup·swap(x))` complex multiply; the
//! scalar bodies are the fallback and the oracle the SIMD paths are
//! tested against. NEON butterflies are deliberately not implemented
//! yet (the microkernel and slice primitives carry AArch64 for now —
//! see ROADMAP "Open items"); non-AVX2 hosts take the scalar path.
//!
//! The `wide` flag is resolved once per transform by the caller (one
//! dispatch-table read per `fft_inplace`, not one per butterfly).

use gcnn_tensor::simd::Isa;
use gcnn_tensor::Complex32;

/// Resolve the dispatch decision for a whole transform: true when the
/// AVX2+FMA butterfly bodies should run.
#[inline]
pub fn wide_butterflies() -> bool {
    matches!(gcnn_tensor::simd::isa(), Isa::Avx2Fma)
}

/// One DIT block: `a[j], b[j] ← a[j] + w·b[j], a[j] − w·b[j]` with
/// `w = tw[j·stride]`. `a` and `b` are the two half-slices of the block
/// (each `span` long).
#[inline]
pub fn butterflies_dit(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
    wide: bool,
) {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "butterflies_dit: half-slice length mismatch"
    );
    debug_assert!(
        a.is_empty() || tw.len() > (a.len() - 1) * stride,
        "butterflies_dit: twiddle table short"
    );
    #[cfg(target_arch = "x86_64")]
    if wide && a.len() >= 4 {
        // SAFETY: `wide` is only true after runtime AVX2+FMA detection.
        unsafe { butterflies_dit_avx2(a, b, tw, stride) };
        return;
    }
    let _ = wide;
    butterflies_dit_scalar(a, b, tw, stride);
}

/// Scalar oracle for [`butterflies_dit`].
#[inline]
pub fn butterflies_dit_scalar(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
) {
    for (j, (aj, bj)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
        let w = tw[j * stride];
        let x = *aj;
        let y = *bj * w;
        *aj = x + y;
        *bj = x - y;
    }
}

/// One DIF block: `a[j], b[j] ← a[j] + b[j], (a[j] − b[j])·w` with
/// `w = tw[j·stride]`.
#[inline]
pub fn butterflies_dif(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
    wide: bool,
) {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "butterflies_dif: half-slice length mismatch"
    );
    debug_assert!(
        a.is_empty() || tw.len() > (a.len() - 1) * stride,
        "butterflies_dif: twiddle table short"
    );
    #[cfg(target_arch = "x86_64")]
    if wide && a.len() >= 4 {
        // SAFETY: `wide` is only true after runtime AVX2+FMA detection.
        unsafe { butterflies_dif_avx2(a, b, tw, stride) };
        return;
    }
    let _ = wide;
    butterflies_dif_scalar(a, b, tw, stride);
}

/// Scalar oracle for [`butterflies_dif`].
#[inline]
pub fn butterflies_dif_scalar(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
) {
    for (j, (aj, bj)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
        let w = tw[j * stride];
        let x = *aj;
        let y = *bj;
        *aj = x + y;
        *bj = (x - y) * w;
    }
}

/// Scale a complex slice by a real factor (the `1/n` of an inverse
/// transform) through the f32 SIMD table.
#[inline]
pub fn scale(data: &mut [Complex32], s: f32) {
    // SAFETY: Complex32 is `#[repr(C)] { re: f32, im: f32 }` with size
    // 8 and align 4 (const-asserted next to the type), so `data`'s
    // allocation holds exactly `2 · len` properly-aligned f32 values;
    // the view borrows `data` mutably for its whole lifetime, so no
    // aliasing `&mut [Complex32]` exists while the f32 slice is live.
    let floats =
        unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut f32, 2 * data.len()) };
    gcnn_tensor::simd::sscal(s, floats);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex32;
    use std::arch::x86_64::*;

    /// `x · w` for four packed complex values per operand:
    /// `addsub(re(w)·x, im(w)·swap(x))`.
    ///
    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime (guaranteed by
    /// every caller being itself `avx2,fma` target-feature gated).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn cmul4(x: __m256, w: __m256) -> __m256 {
        // Pure register arithmetic: these intrinsics are safe to call
        // inside an `avx2,fma` target-feature fn; no inner unsafe is
        // needed.
        let wre = _mm256_moveldup_ps(w);
        let wim = _mm256_movehdup_ps(w);
        let xswap = _mm256_permute_ps(x, 0b1011_0001);
        _mm256_addsub_ps(_mm256_mul_ps(wre, x), _mm256_mul_ps(wim, xswap))
    }

    /// Four consecutive twiddles `tw[j·stride..]` as one vector:
    /// a contiguous load when `stride == 1`, otherwise assembled on the
    /// stack (strided stages are the short early/late ones).
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and must pass
    /// `tw.len() >= (j + 3)·stride + 1`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn load_tw(tw: &[Complex32], j: usize, stride: usize) -> __m256 {
        debug_assert!(
            tw.len() > (j + 3) * stride.max(1),
            "load_tw: twiddle table short"
        );
        if stride == 1 {
            // SAFETY: `tw[j..j+4]` is in bounds (debug-asserted above,
            // guaranteed by the radix-2 schedule), and the interleaved
            // f32 view of `repr(C)` Complex32 is sound.
            unsafe { _mm256_loadu_ps(tw.as_ptr().add(j) as *const f32) }
        } else {
            let g = [
                tw[j * stride],
                tw[(j + 1) * stride],
                tw[(j + 2) * stride],
                tw[(j + 3) * stride],
            ];
            // SAFETY: `g` is a live stack array of 4 Complex32 == 8 f32.
            unsafe { _mm256_loadu_ps(g.as_ptr() as *const f32) }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and must pass
    /// a twiddle table covering `(span − 1)·stride` (the radix-2 stage
    /// schedule guarantees both).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies_dit_avx2(
        a: &mut [Complex32],
        b: &mut [Complex32],
        tw: &[Complex32],
        stride: usize,
    ) {
        debug_assert_eq!(a.len(), b.len(), "butterflies_dit_avx2: half-slices");
        let span = a.len().min(b.len());
        debug_assert!(
            span == 0 || tw.len() > (span - 1) * stride,
            "butterflies_dit_avx2: twiddle table short"
        );
        // SAFETY: reached only after runtime AVX2+FMA detection. The
        // interleaved f32 views of `a`/`b` are sound (`repr(C)`
        // Complex32, const-asserted layout); the 4-butterfly loop
        // touches f32 offsets `[2j, 2j + 8)` of each half-slice only
        // while `j + 4 <= span`, and `load_tw`'s reads are covered by
        // the twiddle-table precondition. The scalar tail re-borrows
        // `a`/`b` safely after the last raw-pointer access.
        unsafe {
            let ap = a.as_mut_ptr() as *mut f32;
            let bp = b.as_mut_ptr() as *mut f32;
            let mut j = 0;
            while j + 4 <= span {
                let wv = load_tw(tw, j, stride);
                let av = _mm256_loadu_ps(ap.add(2 * j));
                let bv = _mm256_loadu_ps(bp.add(2 * j));
                let bw = cmul4(bv, wv);
                _mm256_storeu_ps(ap.add(2 * j), _mm256_add_ps(av, bw));
                _mm256_storeu_ps(bp.add(2 * j), _mm256_sub_ps(av, bw));
                j += 4;
            }
            if j < span {
                super::butterflies_dit_scalar(
                    &mut a[j..span],
                    &mut b[j..span],
                    &tw[j * stride..],
                    stride,
                );
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and must pass
    /// a twiddle table covering `(span − 1)·stride` (the radix-2 stage
    /// schedule guarantees both).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies_dif_avx2(
        a: &mut [Complex32],
        b: &mut [Complex32],
        tw: &[Complex32],
        stride: usize,
    ) {
        debug_assert_eq!(a.len(), b.len(), "butterflies_dif_avx2: half-slices");
        let span = a.len().min(b.len());
        debug_assert!(
            span == 0 || tw.len() > (span - 1) * stride,
            "butterflies_dif_avx2: twiddle table short"
        );
        // SAFETY: same argument as `butterflies_dit_avx2` — post-
        // detection execution, sound interleaved views, loop bounded by
        // `j + 4 <= span`, twiddle reads covered by the precondition.
        unsafe {
            let ap = a.as_mut_ptr() as *mut f32;
            let bp = b.as_mut_ptr() as *mut f32;
            let mut j = 0;
            while j + 4 <= span {
                let wv = load_tw(tw, j, stride);
                let av = _mm256_loadu_ps(ap.add(2 * j));
                let bv = _mm256_loadu_ps(bp.add(2 * j));
                let d = _mm256_sub_ps(av, bv);
                _mm256_storeu_ps(ap.add(2 * j), _mm256_add_ps(av, bv));
                _mm256_storeu_ps(bp.add(2 * j), cmul4(d, wv));
                j += 4;
            }
            if j < span {
                super::butterflies_dif_scalar(
                    &mut a[j..span],
                    &mut b[j..span],
                    &tw[j * stride..],
                    stride,
                );
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{butterflies_dif_avx2, butterflies_dit_avx2};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;
    use crate::Direction;

    fn signal(n: usize, seed: f32) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * seed).sin(), (i as f32 * (seed + 0.7)).cos()))
            .collect()
    }

    /// Wide and scalar butterfly bodies must agree on every span and
    /// stride a radix-2 schedule produces, including the scalar tail
    /// (span not a multiple of 4 only happens at span < 4, but the
    /// kernels accept any length).
    #[test]
    fn wide_matches_scalar_all_stages() {
        let n = 64;
        let plan = FftPlan::new(n);
        for dir in [Direction::Forward, Direction::Inverse] {
            let tw = plan.table(dir);
            let mut span = 1;
            while span < n {
                let stride = n / (span * 2);
                for dif in [false, true] {
                    let mut a = signal(span, 0.31);
                    let mut b = signal(span, 0.47);
                    let mut ar = a.clone();
                    let mut br = b.clone();
                    if dif {
                        butterflies_dif(&mut a, &mut b, tw, stride, wide_butterflies());
                        butterflies_dif_scalar(&mut ar, &mut br, tw, stride);
                    } else {
                        butterflies_dit(&mut a, &mut b, tw, stride, wide_butterflies());
                        butterflies_dit_scalar(&mut ar, &mut br, tw, stride);
                    }
                    for j in 0..span {
                        assert!(
                            (a[j] - ar[j]).abs() < 1e-5 && (b[j] - br[j]).abs() < 1e-5,
                            "span {span} stride {stride} dif {dif} j {j}"
                        );
                    }
                }
                span *= 2;
            }
        }
    }

    #[test]
    fn scale_matches_per_element() {
        let mut x = signal(13, 0.9);
        let expect: Vec<Complex32> = x.iter().map(|z| z.scale(0.25)).collect();
        scale(&mut x, 0.25);
        assert_eq!(x, expect);
    }
}
