//! SIMD butterfly kernels for the DIT/DIF stage loops.
//!
//! A radix-2 stage applies the same twiddle schedule to every block of
//! `2·span` elements; [`butterflies_dit`] / [`butterflies_dif`] run one
//! block given its two half-slices. The AVX2+FMA bodies process four
//! butterflies (eight interleaved `f32` lanes) per iteration using the
//! classic `addsub(moveldup·x, movehdup·swap(x))` complex multiply; the
//! scalar bodies are the fallback and the oracle the SIMD paths are
//! tested against.
//!
//! The interleaved kernels pay a shuffle per complex multiply and fall
//! scalar below four butterflies, which is why the rfft path measured
//! only 1.26× SIMD speedup. The **split-complex** kernel family below
//! removes both costs (the fbfft layout, PAPERS.md arXiv:1412.7580):
//!
//! * [`lane_butterflies_dit`] / [`lane_butterflies_dif`] — batch-major
//!   butterflies: one scalar twiddle broadcast across `lanes`
//!   contiguous transforms, pure FMA, no shuffle, vectorized at every
//!   stage including span 1.
//! * [`butterflies_dit_split`] / [`butterflies_dif_split`] — split-
//!   layout butterflies across the butterfly index of one transform,
//!   loading twiddles straight from the plan's split tables
//!   ([`crate::FftPlan::table_split`]) so the twiddle multiply is pure
//!   FMA with no per-element re/im extraction.
//! * [`interleave`] / [`deinterleave`] / [`transpose_f32`] — layout
//!   conversions (AVX2 shuffle recipes; NEON `vld2q/vst2q` and
//!   `vtrn1q/vtrn2q` lane shuffles).
//! * [`cmac_split`] — frequency-domain pointwise multiply-accumulate
//!   on split planes.
//!
//! The split family dispatches on [`Isa`] resolved once per transform,
//! carries NEON bodies (the interleaved kernels never did), and every
//! kernel keeps a scalar body that is both the non-SIMD fallback and
//! the property-test oracle; `GCNN_FORCE_SCALAR=1` routes every
//! dispatcher to it bit-identically.
//!
//! The `wide` flag is resolved once per transform by the caller (one
//! dispatch-table read per `fft_inplace`, not one per butterfly).

use gcnn_tensor::simd::Isa;
use gcnn_tensor::Complex32;

/// Resolve the dispatch decision for a whole transform: true when the
/// AVX2+FMA butterfly bodies should run.
#[inline]
pub fn wide_butterflies() -> bool {
    matches!(gcnn_tensor::simd::isa(), Isa::Avx2Fma)
}

/// One DIT block: `a[j], b[j] ← a[j] + w·b[j], a[j] − w·b[j]` with
/// `w = tw[j·stride]`. `a` and `b` are the two half-slices of the block
/// (each `span` long).
#[inline]
pub fn butterflies_dit(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
    wide: bool,
) {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "butterflies_dit: half-slice length mismatch"
    );
    debug_assert!(
        a.is_empty() || tw.len() > (a.len() - 1) * stride,
        "butterflies_dit: twiddle table short"
    );
    #[cfg(target_arch = "x86_64")]
    if wide && a.len() >= 4 {
        // SAFETY: `wide` is only true after runtime AVX2+FMA detection.
        unsafe { butterflies_dit_avx2(a, b, tw, stride) };
        return;
    }
    let _ = wide;
    butterflies_dit_scalar(a, b, tw, stride);
}

/// Scalar oracle for [`butterflies_dit`].
#[inline]
pub fn butterflies_dit_scalar(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
) {
    for (j, (aj, bj)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
        let w = tw[j * stride];
        let x = *aj;
        let y = *bj * w;
        *aj = x + y;
        *bj = x - y;
    }
}

/// One DIF block: `a[j], b[j] ← a[j] + b[j], (a[j] − b[j])·w` with
/// `w = tw[j·stride]`.
#[inline]
pub fn butterflies_dif(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
    wide: bool,
) {
    debug_assert_eq!(
        a.len(),
        b.len(),
        "butterflies_dif: half-slice length mismatch"
    );
    debug_assert!(
        a.is_empty() || tw.len() > (a.len() - 1) * stride,
        "butterflies_dif: twiddle table short"
    );
    #[cfg(target_arch = "x86_64")]
    if wide && a.len() >= 4 {
        // SAFETY: `wide` is only true after runtime AVX2+FMA detection.
        unsafe { butterflies_dif_avx2(a, b, tw, stride) };
        return;
    }
    let _ = wide;
    butterflies_dif_scalar(a, b, tw, stride);
}

/// Scalar oracle for [`butterflies_dif`].
#[inline]
pub fn butterflies_dif_scalar(
    a: &mut [Complex32],
    b: &mut [Complex32],
    tw: &[Complex32],
    stride: usize,
) {
    for (j, (aj, bj)) in a.iter_mut().zip(b.iter_mut()).enumerate() {
        let w = tw[j * stride];
        let x = *aj;
        let y = *bj;
        *aj = x + y;
        *bj = (x - y) * w;
    }
}

/// Scale a complex slice by a real factor (the `1/n` of an inverse
/// transform) through the f32 SIMD table.
#[inline]
pub fn scale(data: &mut [Complex32], s: f32) {
    // SAFETY: Complex32 is `#[repr(C)] { re: f32, im: f32 }` with size
    // 8 and align 4 (const-asserted next to the type), so `data`'s
    // allocation holds exactly `2 · len` properly-aligned f32 values;
    // the view borrows `data` mutably for its whole lifetime, so no
    // aliasing `&mut [Complex32]` exists while the f32 slice is live.
    let floats =
        unsafe { std::slice::from_raw_parts_mut(data.as_mut_ptr() as *mut f32, 2 * data.len()) };
    gcnn_tensor::simd::sscal(s, floats);
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::Complex32;
    use std::arch::x86_64::*;

    /// `x · w` for four packed complex values per operand:
    /// `addsub(re(w)·x, im(w)·swap(x))`.
    ///
    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime (guaranteed by
    /// every caller being itself `avx2,fma` target-feature gated).
    #[target_feature(enable = "avx2,fma")]
    #[inline]
    unsafe fn cmul4(x: __m256, w: __m256) -> __m256 {
        // Pure register arithmetic: these intrinsics are safe to call
        // inside an `avx2,fma` target-feature fn; no inner unsafe is
        // needed.
        let wre = _mm256_moveldup_ps(w);
        let wim = _mm256_movehdup_ps(w);
        let xswap = _mm256_permute_ps(x, 0b1011_0001);
        _mm256_addsub_ps(_mm256_mul_ps(wre, x), _mm256_mul_ps(wim, xswap))
    }

    /// Four consecutive twiddles `tw[j·stride..]` as one vector:
    /// a contiguous load when `stride == 1`, otherwise assembled on the
    /// stack (strided stages are the short early/late ones).
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and must pass
    /// `tw.len() >= (j + 3)·stride + 1`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn load_tw(tw: &[Complex32], j: usize, stride: usize) -> __m256 {
        debug_assert!(
            tw.len() > (j + 3) * stride.max(1),
            "load_tw: twiddle table short"
        );
        if stride == 1 {
            // SAFETY: `tw[j..j+4]` is in bounds (debug-asserted above,
            // guaranteed by the radix-2 schedule), and the interleaved
            // f32 view of `repr(C)` Complex32 is sound.
            unsafe { _mm256_loadu_ps(tw.as_ptr().add(j) as *const f32) }
        } else {
            let g = [
                tw[j * stride],
                tw[(j + 1) * stride],
                tw[(j + 2) * stride],
                tw[(j + 3) * stride],
            ];
            // SAFETY: `g` is a live stack array of 4 Complex32 == 8 f32.
            unsafe { _mm256_loadu_ps(g.as_ptr() as *const f32) }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and must pass
    /// a twiddle table covering `(span − 1)·stride` (the radix-2 stage
    /// schedule guarantees both).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies_dit_avx2(
        a: &mut [Complex32],
        b: &mut [Complex32],
        tw: &[Complex32],
        stride: usize,
    ) {
        debug_assert_eq!(a.len(), b.len(), "butterflies_dit_avx2: half-slices");
        let span = a.len().min(b.len());
        debug_assert!(
            span == 0 || tw.len() > (span - 1) * stride,
            "butterflies_dit_avx2: twiddle table short"
        );
        // SAFETY: reached only after runtime AVX2+FMA detection. The
        // interleaved f32 views of `a`/`b` are sound (`repr(C)`
        // Complex32, const-asserted layout); the 4-butterfly loop
        // touches f32 offsets `[2j, 2j + 8)` of each half-slice only
        // while `j + 4 <= span`, and `load_tw`'s reads are covered by
        // the twiddle-table precondition. The scalar tail re-borrows
        // `a`/`b` safely after the last raw-pointer access.
        unsafe {
            let ap = a.as_mut_ptr() as *mut f32;
            let bp = b.as_mut_ptr() as *mut f32;
            let mut j = 0;
            while j + 4 <= span {
                let wv = load_tw(tw, j, stride);
                let av = _mm256_loadu_ps(ap.add(2 * j));
                let bv = _mm256_loadu_ps(bp.add(2 * j));
                let bw = cmul4(bv, wv);
                _mm256_storeu_ps(ap.add(2 * j), _mm256_add_ps(av, bw));
                _mm256_storeu_ps(bp.add(2 * j), _mm256_sub_ps(av, bw));
                j += 4;
            }
            if j < span {
                super::butterflies_dit_scalar(
                    &mut a[j..span],
                    &mut b[j..span],
                    &tw[j * stride..],
                    stride,
                );
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and must pass
    /// a twiddle table covering `(span − 1)·stride` (the radix-2 stage
    /// schedule guarantees both).
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies_dif_avx2(
        a: &mut [Complex32],
        b: &mut [Complex32],
        tw: &[Complex32],
        stride: usize,
    ) {
        debug_assert_eq!(a.len(), b.len(), "butterflies_dif_avx2: half-slices");
        let span = a.len().min(b.len());
        debug_assert!(
            span == 0 || tw.len() > (span - 1) * stride,
            "butterflies_dif_avx2: twiddle table short"
        );
        // SAFETY: same argument as `butterflies_dit_avx2` — post-
        // detection execution, sound interleaved views, loop bounded by
        // `j + 4 <= span`, twiddle reads covered by the precondition.
        unsafe {
            let ap = a.as_mut_ptr() as *mut f32;
            let bp = b.as_mut_ptr() as *mut f32;
            let mut j = 0;
            while j + 4 <= span {
                let wv = load_tw(tw, j, stride);
                let av = _mm256_loadu_ps(ap.add(2 * j));
                let bv = _mm256_loadu_ps(bp.add(2 * j));
                let d = _mm256_sub_ps(av, bv);
                _mm256_storeu_ps(ap.add(2 * j), _mm256_add_ps(av, bv));
                _mm256_storeu_ps(bp.add(2 * j), cmul4(d, wv));
                j += 4;
            }
            if j < span {
                super::butterflies_dif_scalar(
                    &mut a[j..span],
                    &mut b[j..span],
                    &tw[j * stride..],
                    stride,
                );
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{butterflies_dif_avx2, butterflies_dit_avx2};

/// AVX2+FMA bodies for the split-complex kernel family. Split layout
/// means every complex multiply is plain FMA over two f32 vectors —
/// the only shuffles left in this module are the explicit layout
/// conversions (`interleave`/`deinterleave`/`transpose`), which is the
/// point of the rework.
#[cfg(target_arch = "x86_64")]
mod avx2_split {
    use super::Complex32;
    use std::arch::x86_64::*;

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and pass four
    /// equal-length planes.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lane_butterflies_dit_avx2(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        wre: f32,
        wim: f32,
    ) {
        let n = ar.len();
        debug_assert!(
            ai.len() == n && br.len() == n && bi.len() == n,
            "equal-length planes"
        );
        // SAFETY: reached only after runtime AVX2+FMA detection; the
        // vector loop touches lanes `[l, l + 8)` of each plane only
        // while `l + 8 <= n` and the planes are equal length (checked
        // by the dispatching wrapper); the scalar tail re-borrows the
        // slices after the last raw-pointer access.
        unsafe {
            let wr = _mm256_set1_ps(wre);
            let wi = _mm256_set1_ps(wim);
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut l = 0;
            while l + 8 <= n {
                let brv = _mm256_loadu_ps(brp.add(l));
                let biv = _mm256_loadu_ps(bip.add(l));
                // y = w·b: yr = br·wr − bi·wi, yi = br·wi + bi·wr.
                let yr = _mm256_fmsub_ps(brv, wr, _mm256_mul_ps(biv, wi));
                let yi = _mm256_fmadd_ps(brv, wi, _mm256_mul_ps(biv, wr));
                let arv = _mm256_loadu_ps(arp.add(l));
                let aiv = _mm256_loadu_ps(aip.add(l));
                _mm256_storeu_ps(arp.add(l), _mm256_add_ps(arv, yr));
                _mm256_storeu_ps(aip.add(l), _mm256_add_ps(aiv, yi));
                _mm256_storeu_ps(brp.add(l), _mm256_sub_ps(arv, yr));
                _mm256_storeu_ps(bip.add(l), _mm256_sub_ps(aiv, yi));
                l += 8;
            }
            if l < n {
                super::lane_butterflies_dit_scalar(
                    &mut ar[l..],
                    &mut ai[l..],
                    &mut br[l..],
                    &mut bi[l..],
                    wre,
                    wim,
                );
            }
        }
    }

    /// One whole radix-2 DIT stage over the bin-major planes: every
    /// `(start, j)` butterfly row pair of the stage schedule runs inside
    /// this single `target_feature` call, so the per-row cost is the
    /// vector loop alone — no dispatch, no call, no pointer-prologue per
    /// row (the per-row kernel above pays all three, which dominates
    /// when a row is only `lanes/8` vectors long). The `k == 0` twiddle
    /// is always `1 + 0i`, so that row skips the complex multiply
    /// entirely: pure add/sub.
    ///
    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime, pass planes
    /// covering `n·lanes`, twiddle tables covering `(span − 1)·stride`,
    /// and a valid radix-2 stage geometry (`span·2 ≤ n`, `n` a multiple
    /// of `span·2`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lane_stage_dit_avx2(
        re: &mut [f32],
        im: &mut [f32],
        n: usize,
        lanes: usize,
        span: usize,
        stride: usize,
        tw_re: &[f32],
        tw_im: &[f32],
        conj_w: bool,
    ) {
        debug_assert!(
            re.len() >= n * lanes && im.len() >= n * lanes,
            "planes cover n*lanes"
        );
        debug_assert!(
            span == 0 || (tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride),
            "twiddles cover the stage"
        );
        // SAFETY: post-detection execution. For every (start, j) the
        // stage schedule gives `start + j + span ≤ n − 1`, so rows `a`
        // and `b` live inside the `n·lanes` extent the caller
        // guarantees; the vector loop stays in `[l, l + 8)` while
        // `l + 8 <= lv ≤ lanes` and the per-element tails stay below
        // `lanes`, all through the two raw plane pointers (no safe
        // re-borrow aliases them while they are live). Twiddle reads at
        // `j·stride` are covered by the caller's table precondition.
        unsafe {
            let rp = re.as_mut_ptr();
            let ip = im.as_mut_ptr();
            let lv = lanes / 8 * 8;
            let mut start = 0;
            while start < n {
                for j in 0..span {
                    let a = (start + j) * lanes;
                    let b = (start + j + span) * lanes;
                    let arp = rp.add(a);
                    let aip = ip.add(a);
                    let brp = rp.add(b);
                    let bip = ip.add(b);
                    let k = j * stride;
                    if k == 0 {
                        // w = 1: a, b ← a + b, a − b.
                        let mut l = 0;
                        while l < lv {
                            let arv = _mm256_loadu_ps(arp.add(l));
                            let brv = _mm256_loadu_ps(brp.add(l));
                            _mm256_storeu_ps(arp.add(l), _mm256_add_ps(arv, brv));
                            _mm256_storeu_ps(brp.add(l), _mm256_sub_ps(arv, brv));
                            let aiv = _mm256_loadu_ps(aip.add(l));
                            let biv = _mm256_loadu_ps(bip.add(l));
                            _mm256_storeu_ps(aip.add(l), _mm256_add_ps(aiv, biv));
                            _mm256_storeu_ps(bip.add(l), _mm256_sub_ps(aiv, biv));
                            l += 8;
                        }
                        while l < lanes {
                            let (x, y) = (*arp.add(l), *brp.add(l));
                            *arp.add(l) = x + y;
                            *brp.add(l) = x - y;
                            let (x, y) = (*aip.add(l), *bip.add(l));
                            *aip.add(l) = x + y;
                            *bip.add(l) = x - y;
                            l += 1;
                        }
                        continue;
                    }
                    let wre = tw_re[k];
                    let wim = if conj_w { -tw_im[k] } else { tw_im[k] };
                    let wr = _mm256_set1_ps(wre);
                    let wi = _mm256_set1_ps(wim);
                    let mut l = 0;
                    while l < lv {
                        let brv = _mm256_loadu_ps(brp.add(l));
                        let biv = _mm256_loadu_ps(bip.add(l));
                        // y = w·b: yr = br·wr − bi·wi, yi = br·wi + bi·wr.
                        let yr = _mm256_fmsub_ps(brv, wr, _mm256_mul_ps(biv, wi));
                        let yi = _mm256_fmadd_ps(brv, wi, _mm256_mul_ps(biv, wr));
                        let arv = _mm256_loadu_ps(arp.add(l));
                        let aiv = _mm256_loadu_ps(aip.add(l));
                        _mm256_storeu_ps(arp.add(l), _mm256_add_ps(arv, yr));
                        _mm256_storeu_ps(aip.add(l), _mm256_add_ps(aiv, yi));
                        _mm256_storeu_ps(brp.add(l), _mm256_sub_ps(arv, yr));
                        _mm256_storeu_ps(bip.add(l), _mm256_sub_ps(aiv, yi));
                        l += 8;
                    }
                    while l < lanes {
                        // Same Complex32 arithmetic as the scalar
                        // oracle's per-lane body.
                        let y = Complex32::new(*brp.add(l), *bip.add(l)) * Complex32::new(wre, wim);
                        let (xr, xi) = (*arp.add(l), *aip.add(l));
                        *arp.add(l) = xr + y.re;
                        *aip.add(l) = xi + y.im;
                        *brp.add(l) = xr - y.re;
                        *bip.add(l) = xi - y.im;
                        l += 1;
                    }
                }
                start += span * 2;
            }
        }
    }

    /// Two consecutive radix-2 DIT stages (spans `s` and `2s`) fused
    /// into one pass over the planes — the radix-4 data flow. Each
    /// group of four rows (`start + j`, `+s`, `+2s`, `+3s`) is loaded
    /// once, carried through both butterfly levels in registers, and
    /// stored once, halving the load/store traffic of the store-port-
    /// bound single-stage kernel. Twiddles stay broadcast scalars:
    /// stage A uses `tw[j·stride_a]` (shared by both of its pairs),
    /// stage B uses `tw[j·stride_b]` and `tw[(j + s)·stride_b]`.
    ///
    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime, pass planes
    /// covering `n·lanes`, twiddle tables covering
    /// `(2s − 1)·stride_b`, and a valid fused geometry (`4s ≤ n`, `n` a
    /// multiple of `4s`, `stride_a = n/(2s)`, `stride_b = n/(4s)`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lane_stage2_dit_avx2(
        re: &mut [f32],
        im: &mut [f32],
        n: usize,
        lanes: usize,
        s: usize,
        stride_a: usize,
        stride_b: usize,
        tw_re: &[f32],
        tw_im: &[f32],
        conj_w: bool,
    ) {
        debug_assert!(
            re.len() >= n * lanes && im.len() >= n * lanes,
            "planes cover n*lanes"
        );
        debug_assert!(
            s == 0
                || (tw_re.len() > (2 * s - 1) * stride_b
                    && tw_im.len() > (2 * s - 1) * stride_b
                    && tw_re.len() > (s - 1) * stride_a
                    && tw_im.len() > (s - 1) * stride_a),
            "twiddles cover the fused schedule"
        );
        // SAFETY: post-detection execution. The fused schedule keeps
        // `start + j + 3s ≤ n − 1`, so all four rows live inside the
        // caller-guaranteed `n·lanes` extent; the vector loop stays in
        // `[l, l + 8)` while `l + 8 <= lv ≤ lanes` and the per-element
        // tails stay below `lanes`, all through the two raw plane
        // pointers. Twiddle reads at `j·stride_a`, `j·stride_b` and
        // `(j + s)·stride_b` are covered by the caller's table
        // precondition.
        unsafe {
            let rp = re.as_mut_ptr();
            let ip = im.as_mut_ptr();
            let lv = lanes / 8 * 8;
            let mut start = 0;
            while start < n {
                for j in 0..s {
                    let r0 = (start + j) * lanes;
                    let r1 = (start + j + s) * lanes;
                    let r2 = (start + j + 2 * s) * lanes;
                    let r3 = (start + j + 3 * s) * lanes;
                    let (p0r, p0i) = (rp.add(r0), ip.add(r0));
                    let (p1r, p1i) = (rp.add(r1), ip.add(r1));
                    let (p2r, p2i) = (rp.add(r2), ip.add(r2));
                    let (p3r, p3i) = (rp.add(r3), ip.add(r3));
                    if j == 0 {
                        // wa = wb1 = 1, but the second stage-B pair's
                        // twiddle is tw[s·stride_b] = tw[n/4] = ∓i, so
                        // s1 = ∓i·u3 is a swap-and-negate, not a
                        // multiply: forward s1 = (u3i, −u3r), inverse
                        // (conj) s1 = (−u3i, u3r).
                        let mut l = 0;
                        while l < lv {
                            let a_r = _mm256_loadu_ps(p0r.add(l));
                            let a_i = _mm256_loadu_ps(p0i.add(l));
                            let b_r = _mm256_loadu_ps(p1r.add(l));
                            let b_i = _mm256_loadu_ps(p1i.add(l));
                            let c_r = _mm256_loadu_ps(p2r.add(l));
                            let c_i = _mm256_loadu_ps(p2i.add(l));
                            let d_r = _mm256_loadu_ps(p3r.add(l));
                            let d_i = _mm256_loadu_ps(p3i.add(l));
                            let u0r = _mm256_add_ps(a_r, b_r);
                            let u0i = _mm256_add_ps(a_i, b_i);
                            let u1r = _mm256_sub_ps(a_r, b_r);
                            let u1i = _mm256_sub_ps(a_i, b_i);
                            let u2r = _mm256_add_ps(c_r, d_r);
                            let u2i = _mm256_add_ps(c_i, d_i);
                            let u3r = _mm256_sub_ps(c_r, d_r);
                            let u3i = _mm256_sub_ps(c_i, d_i);
                            _mm256_storeu_ps(p0r.add(l), _mm256_add_ps(u0r, u2r));
                            _mm256_storeu_ps(p0i.add(l), _mm256_add_ps(u0i, u2i));
                            _mm256_storeu_ps(p2r.add(l), _mm256_sub_ps(u0r, u2r));
                            _mm256_storeu_ps(p2i.add(l), _mm256_sub_ps(u0i, u2i));
                            let (s1r, s1i) = if conj_w {
                                // +i·u3 = (−u3i, u3r)
                                (_mm256_sub_ps(_mm256_setzero_ps(), u3i), u3r)
                            } else {
                                // −i·u3 = (u3i, −u3r)
                                (u3i, _mm256_sub_ps(_mm256_setzero_ps(), u3r))
                            };
                            _mm256_storeu_ps(p1r.add(l), _mm256_add_ps(u1r, s1r));
                            _mm256_storeu_ps(p1i.add(l), _mm256_add_ps(u1i, s1i));
                            _mm256_storeu_ps(p3r.add(l), _mm256_sub_ps(u1r, s1r));
                            _mm256_storeu_ps(p3i.add(l), _mm256_sub_ps(u1i, s1i));
                            l += 8;
                        }
                        while l < lanes {
                            let (ar, ai) = (*p0r.add(l), *p0i.add(l));
                            let (br, bi) = (*p1r.add(l), *p1i.add(l));
                            let (cr, ci) = (*p2r.add(l), *p2i.add(l));
                            let (dr, di) = (*p3r.add(l), *p3i.add(l));
                            let (u0r, u0i) = (ar + br, ai + bi);
                            let (u1r, u1i) = (ar - br, ai - bi);
                            let (u2r, u2i) = (cr + dr, ci + di);
                            let (u3r, u3i) = (cr - dr, ci - di);
                            *p0r.add(l) = u0r + u2r;
                            *p0i.add(l) = u0i + u2i;
                            *p2r.add(l) = u0r - u2r;
                            *p2i.add(l) = u0i - u2i;
                            let (s1r, s1i) = if conj_w { (-u3i, u3r) } else { (u3i, -u3r) };
                            *p1r.add(l) = u1r + s1r;
                            *p1i.add(l) = u1i + s1i;
                            *p3r.add(l) = u1r - s1r;
                            *p3i.add(l) = u1i - s1i;
                            l += 1;
                        }
                        continue;
                    }
                    let ka = j * stride_a;
                    let kb1 = j * stride_b;
                    let kb2 = (j + s) * stride_b;
                    let (war, mut wai) = (tw_re[ka], tw_im[ka]);
                    let (wb1r, mut wb1i) = (tw_re[kb1], tw_im[kb1]);
                    let (wb2r, mut wb2i) = (tw_re[kb2], tw_im[kb2]);
                    if conj_w {
                        wai = -wai;
                        wb1i = -wb1i;
                        wb2i = -wb2i;
                    }
                    let war_v = _mm256_set1_ps(war);
                    let wai_v = _mm256_set1_ps(wai);
                    let wb1r_v = _mm256_set1_ps(wb1r);
                    let wb1i_v = _mm256_set1_ps(wb1i);
                    let wb2r_v = _mm256_set1_ps(wb2r);
                    let wb2i_v = _mm256_set1_ps(wb2i);
                    let mut l = 0;
                    while l < lv {
                        let b_r = _mm256_loadu_ps(p1r.add(l));
                        let b_i = _mm256_loadu_ps(p1i.add(l));
                        let d_r = _mm256_loadu_ps(p3r.add(l));
                        let d_i = _mm256_loadu_ps(p3i.add(l));
                        // Stage A: t1 = wa·b, t2 = wa·d.
                        let t1r = _mm256_fmsub_ps(b_r, war_v, _mm256_mul_ps(b_i, wai_v));
                        let t1i = _mm256_fmadd_ps(b_r, wai_v, _mm256_mul_ps(b_i, war_v));
                        let t2r = _mm256_fmsub_ps(d_r, war_v, _mm256_mul_ps(d_i, wai_v));
                        let t2i = _mm256_fmadd_ps(d_r, wai_v, _mm256_mul_ps(d_i, war_v));
                        let a_r = _mm256_loadu_ps(p0r.add(l));
                        let a_i = _mm256_loadu_ps(p0i.add(l));
                        let c_r = _mm256_loadu_ps(p2r.add(l));
                        let c_i = _mm256_loadu_ps(p2i.add(l));
                        let u0r = _mm256_add_ps(a_r, t1r);
                        let u0i = _mm256_add_ps(a_i, t1i);
                        let u1r = _mm256_sub_ps(a_r, t1r);
                        let u1i = _mm256_sub_ps(a_i, t1i);
                        let u2r = _mm256_add_ps(c_r, t2r);
                        let u2i = _mm256_add_ps(c_i, t2i);
                        let u3r = _mm256_sub_ps(c_r, t2r);
                        let u3i = _mm256_sub_ps(c_i, t2i);
                        // Stage B: s0 = wb1·u2, s1 = wb2·u3.
                        let s0r = _mm256_fmsub_ps(u2r, wb1r_v, _mm256_mul_ps(u2i, wb1i_v));
                        let s0i = _mm256_fmadd_ps(u2r, wb1i_v, _mm256_mul_ps(u2i, wb1r_v));
                        let s1r = _mm256_fmsub_ps(u3r, wb2r_v, _mm256_mul_ps(u3i, wb2i_v));
                        let s1i = _mm256_fmadd_ps(u3r, wb2i_v, _mm256_mul_ps(u3i, wb2r_v));
                        _mm256_storeu_ps(p0r.add(l), _mm256_add_ps(u0r, s0r));
                        _mm256_storeu_ps(p0i.add(l), _mm256_add_ps(u0i, s0i));
                        _mm256_storeu_ps(p2r.add(l), _mm256_sub_ps(u0r, s0r));
                        _mm256_storeu_ps(p2i.add(l), _mm256_sub_ps(u0i, s0i));
                        _mm256_storeu_ps(p1r.add(l), _mm256_add_ps(u1r, s1r));
                        _mm256_storeu_ps(p1i.add(l), _mm256_add_ps(u1i, s1i));
                        _mm256_storeu_ps(p3r.add(l), _mm256_sub_ps(u1r, s1r));
                        _mm256_storeu_ps(p3i.add(l), _mm256_sub_ps(u1i, s1i));
                        l += 8;
                    }
                    while l < lanes {
                        let a = Complex32::new(*p0r.add(l), *p0i.add(l));
                        let b = Complex32::new(*p1r.add(l), *p1i.add(l));
                        let c = Complex32::new(*p2r.add(l), *p2i.add(l));
                        let d = Complex32::new(*p3r.add(l), *p3i.add(l));
                        let wa = Complex32::new(war, wai);
                        let t1 = b * wa;
                        let t2 = d * wa;
                        let (u0, u1) = (a + t1, a - t1);
                        let (u2, u3) = (c + t2, c - t2);
                        let s0 = u2 * Complex32::new(wb1r, wb1i);
                        let s1 = u3 * Complex32::new(wb2r, wb2i);
                        let (v0, v2) = (u0 + s0, u0 - s0);
                        let (v1, v3) = (u1 + s1, u1 - s1);
                        *p0r.add(l) = v0.re;
                        *p0i.add(l) = v0.im;
                        *p1r.add(l) = v1.re;
                        *p1i.add(l) = v1.im;
                        *p2r.add(l) = v2.re;
                        *p2i.add(l) = v2.im;
                        *p3r.add(l) = v3.re;
                        *p3i.add(l) = v3.im;
                        l += 1;
                    }
                }
                start += s * 4;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and pass four
    /// equal-length planes.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn lane_butterflies_dif_avx2(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        wre: f32,
        wim: f32,
    ) {
        let n = ar.len();
        debug_assert!(
            ai.len() == n && br.len() == n && bi.len() == n,
            "equal-length planes"
        );
        // SAFETY: same argument as `lane_butterflies_dit_avx2`.
        unsafe {
            let wr = _mm256_set1_ps(wre);
            let wi = _mm256_set1_ps(wim);
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut l = 0;
            while l + 8 <= n {
                let arv = _mm256_loadu_ps(arp.add(l));
                let aiv = _mm256_loadu_ps(aip.add(l));
                let brv = _mm256_loadu_ps(brp.add(l));
                let biv = _mm256_loadu_ps(bip.add(l));
                let dr = _mm256_sub_ps(arv, brv);
                let di = _mm256_sub_ps(aiv, biv);
                _mm256_storeu_ps(arp.add(l), _mm256_add_ps(arv, brv));
                _mm256_storeu_ps(aip.add(l), _mm256_add_ps(aiv, biv));
                // (a − b)·w in split form.
                _mm256_storeu_ps(brp.add(l), _mm256_fmsub_ps(dr, wr, _mm256_mul_ps(di, wi)));
                _mm256_storeu_ps(bip.add(l), _mm256_fmadd_ps(dr, wi, _mm256_mul_ps(di, wr)));
                l += 8;
            }
            if l < n {
                super::lane_butterflies_dif_scalar(
                    &mut ar[l..],
                    &mut ai[l..],
                    &mut br[l..],
                    &mut bi[l..],
                    wre,
                    wim,
                );
            }
        }
    }

    /// Eight split twiddles starting at `j·stride` as a `(re, im)`
    /// vector pair: contiguous loads when `stride == 1`, otherwise
    /// assembled on the stack.
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime and pass tables
    /// covering `(j + 7)·stride`.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn load_tw_split(
        tw_re: &[f32],
        tw_im: &[f32],
        j: usize,
        stride: usize,
    ) -> (__m256, __m256) {
        debug_assert!(
            tw_re.len() > (j + 7) * stride.max(1),
            "load_tw_split: twiddle table short"
        );
        if stride == 1 {
            // SAFETY: `tw_re[j..j+8]` / `tw_im[j..j+8]` are in bounds
            // (debug-asserted above, guaranteed by the radix-2
            // schedule).
            unsafe {
                (
                    _mm256_loadu_ps(tw_re.as_ptr().add(j)),
                    _mm256_loadu_ps(tw_im.as_ptr().add(j)),
                )
            }
        } else {
            let mut gr = [0.0f32; 8];
            let mut gi = [0.0f32; 8];
            for (t, slot) in gr.iter_mut().enumerate() {
                *slot = tw_re[(j + t) * stride];
            }
            for (t, slot) in gi.iter_mut().enumerate() {
                *slot = tw_im[(j + t) * stride];
            }
            // SAFETY: `gr`/`gi` are live 8-element stack arrays.
            unsafe { (_mm256_loadu_ps(gr.as_ptr()), _mm256_loadu_ps(gi.as_ptr())) }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and pass a
    /// twiddle table covering `(len − 1)·stride`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies_dit_split_avx2(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        tw_re: &[f32],
        tw_im: &[f32],
        stride: usize,
        conj_w: bool,
    ) {
        let span = ar.len();
        debug_assert!(
            ai.len() == span && br.len() == span && bi.len() == span,
            "equal-length planes"
        );
        debug_assert!(
            span == 0 || (tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride),
            "twiddles cover the span"
        );
        // SAFETY: post-detection execution; the vector loop stays in
        // `[j, j + 8)` while `j + 8 <= span` over equal-length planes,
        // twiddle reads are covered by the caller's table precondition,
        // and the scalar tail re-borrows the slices.
        unsafe {
            let neg0 = _mm256_set1_ps(-0.0);
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut j = 0;
            while j + 8 <= span {
                let (wr, mut wi) = load_tw_split(tw_re, tw_im, j, stride);
                if conj_w {
                    // Inverse direction: negate the imaginary twiddle
                    // plane — a sign-bit xor, not a shuffle.
                    wi = _mm256_xor_ps(wi, neg0);
                }
                let brv = _mm256_loadu_ps(brp.add(j));
                let biv = _mm256_loadu_ps(bip.add(j));
                let yr = _mm256_fmsub_ps(brv, wr, _mm256_mul_ps(biv, wi));
                let yi = _mm256_fmadd_ps(brv, wi, _mm256_mul_ps(biv, wr));
                let arv = _mm256_loadu_ps(arp.add(j));
                let aiv = _mm256_loadu_ps(aip.add(j));
                _mm256_storeu_ps(arp.add(j), _mm256_add_ps(arv, yr));
                _mm256_storeu_ps(aip.add(j), _mm256_add_ps(aiv, yi));
                _mm256_storeu_ps(brp.add(j), _mm256_sub_ps(arv, yr));
                _mm256_storeu_ps(bip.add(j), _mm256_sub_ps(aiv, yi));
                j += 8;
            }
            if j < span {
                super::butterflies_dit_split_scalar(
                    &mut ar[j..],
                    &mut ai[j..],
                    &mut br[j..],
                    &mut bi[j..],
                    &tw_re[j * stride..],
                    &tw_im[j * stride..],
                    stride,
                    conj_w,
                );
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and pass a
    /// twiddle table covering `(len − 1)·stride`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn butterflies_dif_split_avx2(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        tw_re: &[f32],
        tw_im: &[f32],
        stride: usize,
        conj_w: bool,
    ) {
        let span = ar.len();
        debug_assert!(
            ai.len() == span && br.len() == span && bi.len() == span,
            "equal-length planes"
        );
        debug_assert!(
            span == 0 || (tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride),
            "twiddles cover the span"
        );
        // SAFETY: same argument as `butterflies_dit_split_avx2`.
        unsafe {
            let neg0 = _mm256_set1_ps(-0.0);
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut j = 0;
            while j + 8 <= span {
                let (wr, mut wi) = load_tw_split(tw_re, tw_im, j, stride);
                if conj_w {
                    wi = _mm256_xor_ps(wi, neg0);
                }
                let arv = _mm256_loadu_ps(arp.add(j));
                let aiv = _mm256_loadu_ps(aip.add(j));
                let brv = _mm256_loadu_ps(brp.add(j));
                let biv = _mm256_loadu_ps(bip.add(j));
                let dr = _mm256_sub_ps(arv, brv);
                let di = _mm256_sub_ps(aiv, biv);
                _mm256_storeu_ps(arp.add(j), _mm256_add_ps(arv, brv));
                _mm256_storeu_ps(aip.add(j), _mm256_add_ps(aiv, biv));
                _mm256_storeu_ps(brp.add(j), _mm256_fmsub_ps(dr, wr, _mm256_mul_ps(di, wi)));
                _mm256_storeu_ps(bip.add(j), _mm256_fmadd_ps(dr, wi, _mm256_mul_ps(di, wr)));
                j += 8;
            }
            if j < span {
                super::butterflies_dif_split_scalar(
                    &mut ar[j..],
                    &mut ai[j..],
                    &mut br[j..],
                    &mut bi[j..],
                    &tw_re[j * stride..],
                    &tw_im[j * stride..],
                    stride,
                    conj_w,
                );
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 at runtime and pass equal-length
    /// slices.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn deinterleave_avx2(src: &[Complex32], re: &mut [f32], im: &mut [f32]) {
        let n = src.len();
        debug_assert!(re.len() == n && im.len() == n, "equal-length planes");
        // SAFETY: post-detection execution; the interleaved f32 view of
        // `repr(C)` Complex32 is sound, the loop reads f32 offsets
        // `[2l, 2l + 16)` of `src` and writes `[l, l + 8)` of `re`/`im`
        // only while `l + 8 <= n`, and lengths match per the wrapper's
        // debug assert. The scalar tail re-borrows the slices.
        unsafe {
            // Lane-corrector: shuffle_ps below yields [0 1 4 5 | 2 3 6 7]
            // element order; this permute restores ascending order.
            let idx = _mm256_setr_epi32(0, 1, 4, 5, 2, 3, 6, 7);
            let sp = src.as_ptr() as *const f32;
            let rp = re.as_mut_ptr();
            let ip = im.as_mut_ptr();
            let mut l = 0;
            while l + 8 <= n {
                let lo = _mm256_loadu_ps(sp.add(2 * l)); // c0..c3
                let hi = _mm256_loadu_ps(sp.add(2 * l + 8)); // c4..c7
                let re_sh = _mm256_shuffle_ps(lo, hi, 0b10_00_10_00);
                let im_sh = _mm256_shuffle_ps(lo, hi, 0b11_01_11_01);
                _mm256_storeu_ps(rp.add(l), _mm256_permutevar8x32_ps(re_sh, idx));
                _mm256_storeu_ps(ip.add(l), _mm256_permutevar8x32_ps(im_sh, idx));
                l += 8;
            }
            if l < n {
                super::deinterleave_scalar(&src[l..], &mut re[l..], &mut im[l..]);
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 at runtime and pass equal-length
    /// slices.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn interleave_avx2(re: &[f32], im: &[f32], out: &mut [Complex32]) {
        let n = out.len();
        debug_assert!(re.len() == n && im.len() == n, "equal-length planes");
        // SAFETY: mirror of `deinterleave_avx2` — reads `[l, l + 8)` of
        // `re`/`im` and writes f32 offsets `[2l, 2l + 16)` of `out`
        // only while `l + 8 <= n`; sound interleaved view; scalar tail
        // re-borrows.
        unsafe {
            let rp = re.as_ptr();
            let ip = im.as_ptr();
            let op = out.as_mut_ptr() as *mut f32;
            let mut l = 0;
            while l + 8 <= n {
                let rv = _mm256_loadu_ps(rp.add(l));
                let iv = _mm256_loadu_ps(ip.add(l));
                let lo = _mm256_unpacklo_ps(rv, iv); // r0 i0 r1 i1 | r4 i4 r5 i5
                let hi = _mm256_unpackhi_ps(rv, iv); // r2 i2 r3 i3 | r6 i6 r7 i7
                _mm256_storeu_ps(op.add(2 * l), _mm256_permute2f128_ps(lo, hi, 0x20));
                _mm256_storeu_ps(op.add(2 * l + 8), _mm256_permute2f128_ps(lo, hi, 0x31));
                l += 8;
            }
            if l < n {
                super::interleave_scalar(&re[l..], &im[l..], &mut out[l..]);
            }
        }
    }

    /// In-register 8×8 f32 transpose (classic unpack → shuffle →
    /// permute2f128 ladder).
    ///
    /// # Safety
    /// Caller must have verified AVX2 at runtime.
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn transpose8x8(v: [__m256; 8]) -> [__m256; 8] {
        // Pure register arithmetic inside a target-feature fn.
        let t0 = _mm256_unpacklo_ps(v[0], v[1]);
        let t1 = _mm256_unpackhi_ps(v[0], v[1]);
        let t2 = _mm256_unpacklo_ps(v[2], v[3]);
        let t3 = _mm256_unpackhi_ps(v[2], v[3]);
        let t4 = _mm256_unpacklo_ps(v[4], v[5]);
        let t5 = _mm256_unpackhi_ps(v[4], v[5]);
        let t6 = _mm256_unpacklo_ps(v[6], v[7]);
        let t7 = _mm256_unpackhi_ps(v[6], v[7]);
        let s0 = _mm256_shuffle_ps(t0, t2, 0x44);
        let s1 = _mm256_shuffle_ps(t0, t2, 0xEE);
        let s2 = _mm256_shuffle_ps(t1, t3, 0x44);
        let s3 = _mm256_shuffle_ps(t1, t3, 0xEE);
        let s4 = _mm256_shuffle_ps(t4, t6, 0x44);
        let s5 = _mm256_shuffle_ps(t4, t6, 0xEE);
        let s6 = _mm256_shuffle_ps(t5, t7, 0x44);
        let s7 = _mm256_shuffle_ps(t5, t7, 0xEE);
        [
            _mm256_permute2f128_ps(s0, s4, 0x20),
            _mm256_permute2f128_ps(s1, s5, 0x20),
            _mm256_permute2f128_ps(s2, s6, 0x20),
            _mm256_permute2f128_ps(s3, s7, 0x20),
            _mm256_permute2f128_ps(s0, s4, 0x31),
            _mm256_permute2f128_ps(s1, s5, 0x31),
            _mm256_permute2f128_ps(s2, s6, 0x31),
            _mm256_permute2f128_ps(s3, s7, 0x31),
        ]
    }

    /// # Safety
    /// Caller must have verified AVX2 at runtime and pass slices
    /// covering `rows·cols`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn transpose_f32_avx2(
        src: &[f32],
        rows: usize,
        cols: usize,
        dst: &mut [f32],
    ) {
        debug_assert!(
            src.len() >= rows * cols && dst.len() >= rows * cols,
            "rows*cols extent"
        );
        let rb = rows / 8 * 8;
        let cb = cols / 8 * 8;
        // SAFETY: post-detection execution. Block loads read
        // `src[(r + k)·cols + c .. + 8]` and stores write
        // `dst[(c + k)·rows + r .. + 8]` with `r + 8 <= rb <= rows` and
        // `c + 8 <= cb <= cols`, all inside the `rows·cols` extent the
        // caller guarantees; edge elements are handled through safe
        // indexing after the last raw-pointer access.
        unsafe {
            let sp = src.as_ptr();
            let dp = dst.as_mut_ptr();
            let mut r = 0;
            while r < rb {
                let mut c = 0;
                while c < cb {
                    let block = [
                        _mm256_loadu_ps(sp.add(r * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 1) * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 2) * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 3) * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 4) * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 5) * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 6) * cols + c)),
                        _mm256_loadu_ps(sp.add((r + 7) * cols + c)),
                    ];
                    let t = transpose8x8(block);
                    for (k, row) in t.iter().enumerate() {
                        _mm256_storeu_ps(dp.add((c + k) * rows + r), *row);
                    }
                    c += 8;
                }
                c = cb;
                while c < cols {
                    for k in 0..8 {
                        dst[c * rows + r + k] = src[(r + k) * cols + c];
                    }
                    c += 1;
                }
                r += 8;
            }
            while r < rows {
                for c in 0..cols {
                    dst[c * rows + r] = src[r * cols + c];
                }
                r += 1;
            }
        }
    }

    /// # Safety
    /// Caller must have verified AVX2 and FMA at runtime and pass six
    /// equal-length planes.
    #[target_feature(enable = "avx2,fma")]
    pub(super) unsafe fn cmac_split_avx2(
        ar: &[f32],
        ai: &[f32],
        br: &[f32],
        bi: &[f32],
        conj_b: bool,
        or_: &mut [f32],
        oi: &mut [f32],
    ) {
        let n = ar.len();
        debug_assert!(
            ai.len() == n && br.len() == n && bi.len() == n && or_.len() == n && oi.len() == n,
            "equal-length planes"
        );
        // SAFETY: post-detection execution; the loop stays in
        // `[l, l + 8)` while `l + 8 <= n` over equal-length planes
        // (wrapper debug assert); scalar tail re-borrows.
        unsafe {
            let neg0 = _mm256_set1_ps(-0.0);
            let arp = ar.as_ptr();
            let aip = ai.as_ptr();
            let brp = br.as_ptr();
            let bip = bi.as_ptr();
            let orp = or_.as_mut_ptr();
            let oip = oi.as_mut_ptr();
            let mut l = 0;
            while l + 8 <= n {
                let arv = _mm256_loadu_ps(arp.add(l));
                let aiv = _mm256_loadu_ps(aip.add(l));
                let brv = _mm256_loadu_ps(brp.add(l));
                let mut biv = _mm256_loadu_ps(bip.add(l));
                if conj_b {
                    // conj(b) = (br, −bi): the sign flip is the whole
                    // conjugation in split layout.
                    biv = _mm256_xor_ps(biv, neg0);
                }
                let orv = _mm256_loadu_ps(orp.add(l));
                let oiv = _mm256_loadu_ps(oip.add(l));
                // out += a·b: re += ar·br − ai·bi, im += ar·bi + ai·br.
                let rc = _mm256_fmadd_ps(arv, brv, orv);
                _mm256_storeu_ps(orp.add(l), _mm256_fnmadd_ps(aiv, biv, rc));
                let ic = _mm256_fmadd_ps(arv, biv, oiv);
                _mm256_storeu_ps(oip.add(l), _mm256_fmadd_ps(aiv, brv, ic));
                l += 8;
            }
            if l < n {
                super::cmac_split_scalar(
                    &ar[l..],
                    &ai[l..],
                    &br[l..],
                    &bi[l..],
                    conj_b,
                    &mut or_[l..],
                    &mut oi[l..],
                );
            }
        }
    }
}

/// NEON bodies for the split-complex kernel family — the first
/// vectorized AArch64 path in this crate (the interleaved butterflies
/// never grew one). Butterflies are `vfmaq/vfmsq` over broadcast or
/// contiguous twiddles; the layout conversions use `vld2q/vst2q`
/// de/interleaving loads and `vtrn1q/vtrn2q` lane shuffles for the 4×4
/// transpose blocks.
#[cfg(target_arch = "aarch64")]
mod neon_split {
    use super::Complex32;
    use std::arch::aarch64::*;

    /// # Safety
    /// NEON must be available (baseline on AArch64); planes must be
    /// equal length.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn lane_butterflies_dit_neon(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        wre: f32,
        wim: f32,
    ) {
        let n = ar.len();
        debug_assert!(
            ai.len() == n && br.len() == n && bi.len() == n,
            "equal-length planes"
        );
        // SAFETY: NEON is baseline on AArch64; the vector loop touches
        // lanes `[l, l + 4)` of each equal-length plane only while
        // `l + 4 <= n`; the scalar tail re-borrows the slices.
        unsafe {
            let wr = vdupq_n_f32(wre);
            let wi = vdupq_n_f32(wim);
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut l = 0;
            while l + 4 <= n {
                let brv = vld1q_f32(brp.add(l));
                let biv = vld1q_f32(bip.add(l));
                // y = w·b: yr = br·wr − bi·wi, yi = br·wi + bi·wr.
                let yr = vfmsq_f32(vmulq_f32(brv, wr), biv, wi);
                let yi = vfmaq_f32(vmulq_f32(biv, wr), brv, wi);
                let arv = vld1q_f32(arp.add(l));
                let aiv = vld1q_f32(aip.add(l));
                vst1q_f32(arp.add(l), vaddq_f32(arv, yr));
                vst1q_f32(aip.add(l), vaddq_f32(aiv, yi));
                vst1q_f32(brp.add(l), vsubq_f32(arv, yr));
                vst1q_f32(bip.add(l), vsubq_f32(aiv, yi));
                l += 4;
            }
            if l < n {
                super::lane_butterflies_dit_scalar(
                    &mut ar[l..],
                    &mut ai[l..],
                    &mut br[l..],
                    &mut bi[l..],
                    wre,
                    wim,
                );
            }
        }
    }

    /// One whole radix-2 DIT stage inside a single `target_feature`
    /// call — NEON mirror of the AVX2 stage kernel, including the
    /// multiply-free `k == 0` (`w = 1`) row.
    ///
    /// # Safety
    /// NEON must be available; planes must cover `n·lanes`, twiddle
    /// tables `(span − 1)·stride`, and the stage geometry must be a
    /// valid radix-2 schedule (`span·2 ≤ n`, `n` a multiple of
    /// `span·2`).
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn lane_stage_dit_neon(
        re: &mut [f32],
        im: &mut [f32],
        n: usize,
        lanes: usize,
        span: usize,
        stride: usize,
        tw_re: &[f32],
        tw_im: &[f32],
        conj_w: bool,
    ) {
        debug_assert!(
            re.len() >= n * lanes && im.len() >= n * lanes,
            "planes cover n*lanes"
        );
        debug_assert!(
            span == 0 || (tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride),
            "twiddles cover the stage"
        );
        // SAFETY: the stage schedule keeps `start + j + span ≤ n − 1`,
        // so rows `a`/`b` are inside the caller-guaranteed `n·lanes`
        // extent; the vector loop stays in `[l, l + 4)` while
        // `l + 4 <= lv ≤ lanes` and the per-element tails stay below
        // `lanes`, all through the raw plane pointers. Twiddle reads at
        // `j·stride` are covered by the caller's table precondition.
        unsafe {
            let rp = re.as_mut_ptr();
            let ip = im.as_mut_ptr();
            let lv = lanes / 4 * 4;
            let mut start = 0;
            while start < n {
                for j in 0..span {
                    let a = (start + j) * lanes;
                    let b = (start + j + span) * lanes;
                    let arp = rp.add(a);
                    let aip = ip.add(a);
                    let brp = rp.add(b);
                    let bip = ip.add(b);
                    let k = j * stride;
                    if k == 0 {
                        // w = 1: a, b ← a + b, a − b.
                        let mut l = 0;
                        while l < lv {
                            let arv = vld1q_f32(arp.add(l));
                            let brv = vld1q_f32(brp.add(l));
                            vst1q_f32(arp.add(l), vaddq_f32(arv, brv));
                            vst1q_f32(brp.add(l), vsubq_f32(arv, brv));
                            let aiv = vld1q_f32(aip.add(l));
                            let biv = vld1q_f32(bip.add(l));
                            vst1q_f32(aip.add(l), vaddq_f32(aiv, biv));
                            vst1q_f32(bip.add(l), vsubq_f32(aiv, biv));
                            l += 4;
                        }
                        while l < lanes {
                            let (x, y) = (*arp.add(l), *brp.add(l));
                            *arp.add(l) = x + y;
                            *brp.add(l) = x - y;
                            let (x, y) = (*aip.add(l), *bip.add(l));
                            *aip.add(l) = x + y;
                            *bip.add(l) = x - y;
                            l += 1;
                        }
                        continue;
                    }
                    let wre = tw_re[k];
                    let wim = if conj_w { -tw_im[k] } else { tw_im[k] };
                    let wr = vdupq_n_f32(wre);
                    let wi = vdupq_n_f32(wim);
                    let mut l = 0;
                    while l < lv {
                        let brv = vld1q_f32(brp.add(l));
                        let biv = vld1q_f32(bip.add(l));
                        // y = w·b: yr = br·wr − bi·wi, yi = br·wi + bi·wr.
                        let yr = vfmsq_f32(vmulq_f32(brv, wr), biv, wi);
                        let yi = vfmaq_f32(vmulq_f32(biv, wr), brv, wi);
                        let arv = vld1q_f32(arp.add(l));
                        let aiv = vld1q_f32(aip.add(l));
                        vst1q_f32(arp.add(l), vaddq_f32(arv, yr));
                        vst1q_f32(aip.add(l), vaddq_f32(aiv, yi));
                        vst1q_f32(brp.add(l), vsubq_f32(arv, yr));
                        vst1q_f32(bip.add(l), vsubq_f32(aiv, yi));
                        l += 4;
                    }
                    while l < lanes {
                        // Same Complex32 arithmetic as the scalar
                        // oracle's per-lane body.
                        let y = Complex32::new(*brp.add(l), *bip.add(l)) * Complex32::new(wre, wim);
                        let (xr, xi) = (*arp.add(l), *aip.add(l));
                        *arp.add(l) = xr + y.re;
                        *aip.add(l) = xi + y.im;
                        *brp.add(l) = xr - y.re;
                        *bip.add(l) = xi - y.im;
                        l += 1;
                    }
                }
                start += span * 2;
            }
        }
    }

    /// # Safety
    /// NEON must be available (baseline on AArch64); planes must be
    /// equal length.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn lane_butterflies_dif_neon(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        wre: f32,
        wim: f32,
    ) {
        let n = ar.len();
        debug_assert!(
            ai.len() == n && br.len() == n && bi.len() == n,
            "equal-length planes"
        );
        // SAFETY: same argument as `lane_butterflies_dit_neon`.
        unsafe {
            let wr = vdupq_n_f32(wre);
            let wi = vdupq_n_f32(wim);
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut l = 0;
            while l + 4 <= n {
                let arv = vld1q_f32(arp.add(l));
                let aiv = vld1q_f32(aip.add(l));
                let brv = vld1q_f32(brp.add(l));
                let biv = vld1q_f32(bip.add(l));
                let dr = vsubq_f32(arv, brv);
                let di = vsubq_f32(aiv, biv);
                vst1q_f32(arp.add(l), vaddq_f32(arv, brv));
                vst1q_f32(aip.add(l), vaddq_f32(aiv, biv));
                vst1q_f32(brp.add(l), vfmsq_f32(vmulq_f32(dr, wr), di, wi));
                vst1q_f32(bip.add(l), vfmaq_f32(vmulq_f32(di, wr), dr, wi));
                l += 4;
            }
            if l < n {
                super::lane_butterflies_dif_scalar(
                    &mut ar[l..],
                    &mut ai[l..],
                    &mut br[l..],
                    &mut bi[l..],
                    wre,
                    wim,
                );
            }
        }
    }

    /// Four split twiddles from `j·stride`, contiguous or gathered.
    ///
    /// # Safety
    /// Tables must cover `(j + 3)·stride`.
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn load_tw_split(
        tw_re: &[f32],
        tw_im: &[f32],
        j: usize,
        stride: usize,
        conj_w: bool,
    ) -> (float32x4_t, float32x4_t) {
        debug_assert!(
            tw_re.len() > (j + 3) * stride && tw_im.len() > (j + 3) * stride,
            "tables cover (j+3)*stride"
        );
        // SAFETY: contiguous loads are bounds-covered by the caller's
        // table precondition; the gather path uses safe indexing into
        // live stack arrays.
        unsafe {
            let (wr, wi) = if stride == 1 {
                (
                    vld1q_f32(tw_re.as_ptr().add(j)),
                    vld1q_f32(tw_im.as_ptr().add(j)),
                )
            } else {
                let gr = [
                    tw_re[j * stride],
                    tw_re[(j + 1) * stride],
                    tw_re[(j + 2) * stride],
                    tw_re[(j + 3) * stride],
                ];
                let gi = [
                    tw_im[j * stride],
                    tw_im[(j + 1) * stride],
                    tw_im[(j + 2) * stride],
                    tw_im[(j + 3) * stride],
                ];
                (vld1q_f32(gr.as_ptr()), vld1q_f32(gi.as_ptr()))
            };
            (wr, if conj_w { vnegq_f32(wi) } else { wi })
        }
    }

    /// # Safety
    /// NEON must be available; twiddle tables must cover
    /// `(len − 1)·stride`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn butterflies_dit_split_neon(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        tw_re: &[f32],
        tw_im: &[f32],
        stride: usize,
        conj_w: bool,
    ) {
        let span = ar.len();
        debug_assert!(
            ai.len() == span && br.len() == span && bi.len() == span,
            "equal-length planes"
        );
        debug_assert!(
            span == 0 || (tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride),
            "twiddles cover the span"
        );
        // SAFETY: the loop stays in `[j, j + 4)` while `j + 4 <= span`
        // over equal-length planes; twiddle reads covered by the
        // caller's precondition; scalar tail re-borrows.
        unsafe {
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut j = 0;
            while j + 4 <= span {
                let (wr, wi) = load_tw_split(tw_re, tw_im, j, stride, conj_w);
                let brv = vld1q_f32(brp.add(j));
                let biv = vld1q_f32(bip.add(j));
                let yr = vfmsq_f32(vmulq_f32(brv, wr), biv, wi);
                let yi = vfmaq_f32(vmulq_f32(biv, wr), brv, wi);
                let arv = vld1q_f32(arp.add(j));
                let aiv = vld1q_f32(aip.add(j));
                vst1q_f32(arp.add(j), vaddq_f32(arv, yr));
                vst1q_f32(aip.add(j), vaddq_f32(aiv, yi));
                vst1q_f32(brp.add(j), vsubq_f32(arv, yr));
                vst1q_f32(bip.add(j), vsubq_f32(aiv, yi));
                j += 4;
            }
            if j < span {
                super::butterflies_dit_split_scalar(
                    &mut ar[j..],
                    &mut ai[j..],
                    &mut br[j..],
                    &mut bi[j..],
                    &tw_re[j * stride..],
                    &tw_im[j * stride..],
                    stride,
                    conj_w,
                );
            }
        }
    }

    /// # Safety
    /// NEON must be available; twiddle tables must cover
    /// `(len − 1)·stride`.
    #[allow(clippy::too_many_arguments)]
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn butterflies_dif_split_neon(
        ar: &mut [f32],
        ai: &mut [f32],
        br: &mut [f32],
        bi: &mut [f32],
        tw_re: &[f32],
        tw_im: &[f32],
        stride: usize,
        conj_w: bool,
    ) {
        let span = ar.len();
        debug_assert!(
            ai.len() == span && br.len() == span && bi.len() == span,
            "equal-length planes"
        );
        debug_assert!(
            span == 0 || (tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride),
            "twiddles cover the span"
        );
        // SAFETY: same argument as `butterflies_dit_split_neon`.
        unsafe {
            let arp = ar.as_mut_ptr();
            let aip = ai.as_mut_ptr();
            let brp = br.as_mut_ptr();
            let bip = bi.as_mut_ptr();
            let mut j = 0;
            while j + 4 <= span {
                let (wr, wi) = load_tw_split(tw_re, tw_im, j, stride, conj_w);
                let arv = vld1q_f32(arp.add(j));
                let aiv = vld1q_f32(aip.add(j));
                let brv = vld1q_f32(brp.add(j));
                let biv = vld1q_f32(bip.add(j));
                let dr = vsubq_f32(arv, brv);
                let di = vsubq_f32(aiv, biv);
                vst1q_f32(arp.add(j), vaddq_f32(arv, brv));
                vst1q_f32(aip.add(j), vaddq_f32(aiv, biv));
                vst1q_f32(brp.add(j), vfmsq_f32(vmulq_f32(dr, wr), di, wi));
                vst1q_f32(bip.add(j), vfmaq_f32(vmulq_f32(di, wr), dr, wi));
                j += 4;
            }
            if j < span {
                super::butterflies_dif_split_scalar(
                    &mut ar[j..],
                    &mut ai[j..],
                    &mut br[j..],
                    &mut bi[j..],
                    &tw_re[j * stride..],
                    &tw_im[j * stride..],
                    stride,
                    conj_w,
                );
            }
        }
    }

    /// # Safety
    /// NEON must be available; slices must be equal length.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn deinterleave_neon(src: &[Complex32], re: &mut [f32], im: &mut [f32]) {
        let n = src.len();
        debug_assert!(re.len() == n && im.len() == n, "equal-length planes");
        // SAFETY: the `vld2q` reads f32 offsets `[2l, 2l + 8)` of the
        // sound interleaved view of `src` only while `l + 4 <= n`;
        // writes stay in `[l, l + 4)`; scalar tail re-borrows.
        unsafe {
            let sp = src.as_ptr() as *const f32;
            let rp = re.as_mut_ptr();
            let ip = im.as_mut_ptr();
            let mut l = 0;
            while l + 4 <= n {
                // vld2q de-interleaves: .0 = even (re), .1 = odd (im).
                let z = vld2q_f32(sp.add(2 * l));
                vst1q_f32(rp.add(l), z.0);
                vst1q_f32(ip.add(l), z.1);
                l += 4;
            }
            if l < n {
                super::deinterleave_scalar(&src[l..], &mut re[l..], &mut im[l..]);
            }
        }
    }

    /// # Safety
    /// NEON must be available; slices must be equal length.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn interleave_neon(re: &[f32], im: &[f32], out: &mut [Complex32]) {
        let n = out.len();
        debug_assert!(re.len() == n && im.len() == n, "equal-length planes");
        // SAFETY: mirror of `deinterleave_neon`.
        unsafe {
            let rp = re.as_ptr();
            let ip = im.as_ptr();
            let op = out.as_mut_ptr() as *mut f32;
            let mut l = 0;
            while l + 4 <= n {
                let z = float32x4x2_t(vld1q_f32(rp.add(l)), vld1q_f32(ip.add(l)));
                vst2q_f32(op.add(2 * l), z);
                l += 4;
            }
            if l < n {
                super::interleave_scalar(&re[l..], &im[l..], &mut out[l..]);
            }
        }
    }

    /// In-register 4×4 f32 transpose via the `vtrn1q/vtrn2q` lane
    /// shuffles (f32 pairs, then f64-reinterpreted quads).
    ///
    /// # Safety
    /// NEON must be available.
    #[target_feature(enable = "neon")]
    #[inline]
    unsafe fn transpose4x4(
        a: float32x4_t,
        b: float32x4_t,
        c: float32x4_t,
        d: float32x4_t,
    ) -> (float32x4_t, float32x4_t, float32x4_t, float32x4_t) {
        // Pure register arithmetic inside a target-feature fn.
        let ab0 = vtrn1q_f32(a, b); // a0 b0 a2 b2
        let ab1 = vtrn2q_f32(a, b); // a1 b1 a3 b3
        let cd0 = vtrn1q_f32(c, d);
        let cd1 = vtrn2q_f32(c, d);
        let col0 = vreinterpretq_f32_f64(vtrn1q_f64(
            vreinterpretq_f64_f32(ab0),
            vreinterpretq_f64_f32(cd0),
        ));
        let col2 = vreinterpretq_f32_f64(vtrn2q_f64(
            vreinterpretq_f64_f32(ab0),
            vreinterpretq_f64_f32(cd0),
        ));
        let col1 = vreinterpretq_f32_f64(vtrn1q_f64(
            vreinterpretq_f64_f32(ab1),
            vreinterpretq_f64_f32(cd1),
        ));
        let col3 = vreinterpretq_f32_f64(vtrn2q_f64(
            vreinterpretq_f64_f32(ab1),
            vreinterpretq_f64_f32(cd1),
        ));
        (col0, col1, col2, col3)
    }

    /// # Safety
    /// NEON must be available; slices must cover `rows·cols`.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn transpose_f32_neon(
        src: &[f32],
        rows: usize,
        cols: usize,
        dst: &mut [f32],
    ) {
        debug_assert!(
            src.len() >= rows * cols && dst.len() >= rows * cols,
            "rows*cols extent"
        );
        let rb = rows / 4 * 4;
        let cb = cols / 4 * 4;
        // SAFETY: block loads read `src[(r + k)·cols + c .. + 4]` and
        // stores write `dst[(c + k)·rows + r .. + 4]` with
        // `r + 4 <= rb <= rows`, `c + 4 <= cb <= cols`, inside the
        // caller-guaranteed `rows·cols` extent; edges use safe
        // indexing.
        unsafe {
            let sp = src.as_ptr();
            let dp = dst.as_mut_ptr();
            let mut r = 0;
            while r < rb {
                let mut c = 0;
                while c < cb {
                    let (c0, c1, c2, c3) = transpose4x4(
                        vld1q_f32(sp.add(r * cols + c)),
                        vld1q_f32(sp.add((r + 1) * cols + c)),
                        vld1q_f32(sp.add((r + 2) * cols + c)),
                        vld1q_f32(sp.add((r + 3) * cols + c)),
                    );
                    vst1q_f32(dp.add(c * rows + r), c0);
                    vst1q_f32(dp.add((c + 1) * rows + r), c1);
                    vst1q_f32(dp.add((c + 2) * rows + r), c2);
                    vst1q_f32(dp.add((c + 3) * rows + r), c3);
                    c += 4;
                }
                c = cb;
                while c < cols {
                    for k in 0..4 {
                        dst[c * rows + r + k] = src[(r + k) * cols + c];
                    }
                    c += 1;
                }
                r += 4;
            }
            while r < rows {
                for c in 0..cols {
                    dst[c * rows + r] = src[r * cols + c];
                }
                r += 1;
            }
        }
    }

    /// # Safety
    /// NEON must be available; planes must be equal length.
    #[target_feature(enable = "neon")]
    pub(super) unsafe fn cmac_split_neon(
        ar: &[f32],
        ai: &[f32],
        br: &[f32],
        bi: &[f32],
        conj_b: bool,
        or_: &mut [f32],
        oi: &mut [f32],
    ) {
        let n = ar.len();
        debug_assert!(
            ai.len() == n && br.len() == n && bi.len() == n && or_.len() == n && oi.len() == n,
            "equal-length planes"
        );
        // SAFETY: the loop stays in `[l, l + 4)` while `l + 4 <= n`
        // over equal-length planes; scalar tail re-borrows.
        unsafe {
            let arp = ar.as_ptr();
            let aip = ai.as_ptr();
            let brp = br.as_ptr();
            let bip = bi.as_ptr();
            let orp = or_.as_mut_ptr();
            let oip = oi.as_mut_ptr();
            let mut l = 0;
            while l + 4 <= n {
                let arv = vld1q_f32(arp.add(l));
                let aiv = vld1q_f32(aip.add(l));
                let brv = vld1q_f32(brp.add(l));
                let mut biv = vld1q_f32(bip.add(l));
                if conj_b {
                    biv = vnegq_f32(biv);
                }
                let orv = vld1q_f32(orp.add(l));
                let oiv = vld1q_f32(oip.add(l));
                let rc = vfmaq_f32(orv, arv, brv);
                vst1q_f32(orp.add(l), vfmsq_f32(rc, aiv, biv));
                let ic = vfmaq_f32(oiv, arv, biv);
                vst1q_f32(oip.add(l), vfmaq_f32(ic, aiv, brv));
                l += 4;
            }
            if l < n {
                super::cmac_split_scalar(
                    &ar[l..],
                    &ai[l..],
                    &br[l..],
                    &bi[l..],
                    conj_b,
                    &mut or_[l..],
                    &mut oi[l..],
                );
            }
        }
    }
}

/// Resolve the dispatch decision for a whole split-layout transform.
/// One dispatch-table read per transform; the split kernels then branch
/// on the returned [`Isa`] without touching atomics again.
#[inline]
pub fn split_isa() -> Isa {
    gcnn_tensor::simd::isa()
}

/// One batch-major DIT butterfly row pair across `lanes` transforms:
/// for every lane `l`, with `a = ar[l] + i·ai[l]`, `b = br[l] + i·bi[l]`
/// and the *same* twiddle `w = wre + i·wim`,
/// `a, b ← a + w·b, a − w·b`.
///
/// The twiddle is a broadcast scalar, so the complex multiply is four
/// FMAs over contiguous f32 lanes — no shuffle, and no scalar fallback
/// at small spans (the span lives in the row index, not the lane
/// index).
#[inline]
pub fn lane_butterflies_dit(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    wre: f32,
    wim: f32,
    isa: Isa,
) {
    debug_assert!(
        ar.len() == ai.len() && ar.len() == br.len() && ar.len() == bi.len(),
        "lane_butterflies_dit: plane length mismatch"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection.
            unsafe { avx2_split::lane_butterflies_dit_avx2(ar, ai, br, bi, wre, wim) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64 (dispatch never
            // returns Neon elsewhere).
            unsafe { neon_split::lane_butterflies_dit_neon(ar, ai, br, bi, wre, wim) }
        }
        _ => lane_butterflies_dit_scalar(ar, ai, br, bi, wre, wim),
    }
}

/// Scalar oracle for [`lane_butterflies_dit`]: per-lane [`Complex32`]
/// arithmetic, the same ops the interleaved scalar butterfly performs.
#[inline]
pub fn lane_butterflies_dit_scalar(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    wre: f32,
    wim: f32,
) {
    let w = Complex32::new(wre, wim);
    for l in 0..ar.len() {
        let a = Complex32::new(ar[l], ai[l]);
        let y = Complex32::new(br[l], bi[l]) * w;
        let s = a + y;
        let d = a - y;
        ar[l] = s.re;
        ai[l] = s.im;
        br[l] = d.re;
        bi[l] = d.im;
    }
}

/// One batch-major DIF butterfly row pair across `lanes` transforms:
/// `a, b ← a + b, (a − b)·w` per lane with a broadcast twiddle.
#[inline]
pub fn lane_butterflies_dif(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    wre: f32,
    wim: f32,
    isa: Isa,
) {
    debug_assert!(
        ar.len() == ai.len() && ar.len() == br.len() && ar.len() == bi.len(),
        "lane_butterflies_dif: plane length mismatch"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection.
            unsafe { avx2_split::lane_butterflies_dif_avx2(ar, ai, br, bi, wre, wim) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe { neon_split::lane_butterflies_dif_neon(ar, ai, br, bi, wre, wim) }
        }
        _ => lane_butterflies_dif_scalar(ar, ai, br, bi, wre, wim),
    }
}

/// Scalar oracle for [`lane_butterflies_dif`].
#[inline]
pub fn lane_butterflies_dif_scalar(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    wre: f32,
    wim: f32,
) {
    let w = Complex32::new(wre, wim);
    for l in 0..ar.len() {
        let a = Complex32::new(ar[l], ai[l]);
        let b = Complex32::new(br[l], bi[l]);
        let s = a + b;
        let d = (a - b) * w;
        ar[l] = s.re;
        ai[l] = s.im;
        br[l] = d.re;
        bi[l] = d.im;
    }
}

/// One whole radix-2 DIT stage over bin-major split planes: for every
/// block `start` (step `2·span`) and butterfly row `j < span`, apply
/// [`lane_butterflies_dit`]'s update to rows `start + j` and
/// `start + j + span` with the twiddle `tw[j·stride]` (conjugated when
/// `conj_w`).
///
/// This is the transform hot loop hoisted *inside* the dispatch
/// boundary: the per-row kernel pays a dispatch match, an un-inlinable
/// `target_feature` call and a pointer prologue per `lanes`-float row,
/// which rivals the row's own FMA work for the row lengths the 2-D
/// rfft produces. Here the whole stage schedule — including the
/// multiply-free `w = 1` row every block starts with — runs as one
/// call per stage.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn lane_stage_dit(
    re: &mut [f32],
    im: &mut [f32],
    n: usize,
    lanes: usize,
    span: usize,
    stride: usize,
    tw_re: &[f32],
    tw_im: &[f32],
    conj_w: bool,
    isa: Isa,
) {
    debug_assert!(
        re.len() == n * lanes && im.len() == n * lanes,
        "lane_stage_dit: plane extent mismatch"
    );
    debug_assert!(
        span * 2 <= n && n % (span * 2) == 0,
        "lane_stage_dit: invalid stage geometry"
    );
    debug_assert!(
        span == 0 || tw_re.len() > (span - 1) * stride && tw_im.len() > (span - 1) * stride,
        "lane_stage_dit: twiddle table short"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection; extents, table coverage and stage geometry are
            // debug-asserted above and guaranteed by the radix-2
            // schedule in `fft_lanes_inplace`.
            unsafe {
                avx2_split::lane_stage_dit_avx2(
                    re, im, n, lanes, span, stride, tw_re, tw_im, conj_w,
                )
            }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64; same precondition
            // argument as the AVX2 arm.
            unsafe {
                neon_split::lane_stage_dit_neon(
                    re, im, n, lanes, span, stride, tw_re, tw_im, conj_w,
                )
            }
        }
        _ => lane_stage_dit_scalar(re, im, n, lanes, span, stride, tw_re, tw_im, conj_w),
    }
}

/// Scalar oracle for [`lane_stage_dit`]: the stage schedule driving
/// [`lane_butterflies_dit_scalar`] row pair by row pair — exactly the
/// loop the transform ran before the stage was hoisted inside the
/// dispatch boundary.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn lane_stage_dit_scalar(
    re: &mut [f32],
    im: &mut [f32],
    n: usize,
    lanes: usize,
    span: usize,
    stride: usize,
    tw_re: &[f32],
    tw_im: &[f32],
    conj_w: bool,
) {
    let mut start = 0;
    while start < n {
        for j in 0..span {
            let k = j * stride;
            let wre = tw_re[k];
            let wim = if conj_w { -tw_im[k] } else { tw_im[k] };
            let a = (start + j) * lanes;
            let b = (start + j + span) * lanes;
            let (re_lo, re_hi) = re.split_at_mut(b);
            let (im_lo, im_hi) = im.split_at_mut(b);
            lane_butterflies_dit_scalar(
                &mut re_lo[a..a + lanes],
                &mut im_lo[a..a + lanes],
                &mut re_hi[..lanes],
                &mut im_hi[..lanes],
                wre,
                wim,
            );
        }
        start += span * 2;
    }
}

/// Two consecutive radix-2 DIT stages (spans `s` and `2s`) over
/// bin-major split planes, fused into one pass — the radix-4 data
/// flow: each group of four rows is loaded once, carried through both
/// butterfly levels in registers, and stored once. The single-stage
/// kernel is store-port bound, so halving the pass count is worth more
/// than the (unchanged) FMA count suggests.
///
/// Equivalent to `lane_stage_dit(span = s)` followed by
/// `lane_stage_dit(span = 2s)` up to floating-point rounding (the
/// fused form keeps intermediates in registers and resolves the
/// `tw[n/4] = ∓i` twiddle as a swap-and-negate). The AVX2 body fuses;
/// other ISAs run the two stages through their single-stage kernels,
/// which keeps the scalar arm bit-identical to the unfused schedule.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn lane_stage2_dit(
    re: &mut [f32],
    im: &mut [f32],
    n: usize,
    lanes: usize,
    s: usize,
    stride_a: usize,
    stride_b: usize,
    tw_re: &[f32],
    tw_im: &[f32],
    conj_w: bool,
    isa: Isa,
) {
    debug_assert!(
        re.len() == n * lanes && im.len() == n * lanes,
        "lane_stage2_dit: plane extent mismatch"
    );
    debug_assert!(
        s * 4 <= n && n % (s * 4) == 0,
        "lane_stage2_dit: invalid fused geometry"
    );
    debug_assert!(
        stride_a == n / (s * 2) && stride_b == n / (s * 4),
        "lane_stage2_dit: stride mismatch"
    );
    debug_assert!(
        tw_re.len() > (2 * s - 1) * stride_b && tw_im.len() > (2 * s - 1) * stride_b,
        "lane_stage2_dit: twiddle table short"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection; extents, table coverage and the fused stage
            // geometry are debug-asserted above and guaranteed by the
            // radix-2 schedule in `fft_lanes_inplace`.
            unsafe {
                avx2_split::lane_stage2_dit_avx2(
                    re, im, n, lanes, s, stride_a, stride_b, tw_re, tw_im, conj_w,
                )
            }
        }
        _ => {
            lane_stage_dit(re, im, n, lanes, s, stride_a, tw_re, tw_im, conj_w, isa);
            lane_stage_dit(re, im, n, lanes, s * 2, stride_b, tw_re, tw_im, conj_w, isa);
        }
    }
}

/// One split-layout DIT block across the butterfly index `j` of a
/// single transform: `a[j], b[j] ← a[j] + w_j·b[j], a[j] − w_j·b[j]`
/// with `w_j` read from the plan's split twiddle planes at `j·stride`.
/// `conj_w` negates the imaginary twiddle plane on the fly (the inverse
/// direction) — a sign flip folded into the FMA operands, not a second
/// table and not a shuffle.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn butterflies_dit_split(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    stride: usize,
    conj_w: bool,
    isa: Isa,
) {
    debug_assert!(
        ar.len() == ai.len() && ar.len() == br.len() && ar.len() == bi.len(),
        "butterflies_dit_split: plane length mismatch"
    );
    debug_assert!(
        ar.is_empty() || tw_re.len() > (ar.len() - 1) * stride,
        "butterflies_dit_split: twiddle table short"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma if ar.len() >= 8 => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection; the table covers (len−1)·stride per the debug
            // assert and the radix-2 schedule.
            unsafe {
                avx2_split::butterflies_dit_split_avx2(ar, ai, br, bi, tw_re, tw_im, stride, conj_w)
            }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon if ar.len() >= 4 => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe {
                neon_split::butterflies_dit_split_neon(ar, ai, br, bi, tw_re, tw_im, stride, conj_w)
            }
        }
        _ => butterflies_dit_split_scalar(ar, ai, br, bi, tw_re, tw_im, stride, conj_w),
    }
}

/// Scalar oracle for [`butterflies_dit_split`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn butterflies_dit_split_scalar(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    stride: usize,
    conj_w: bool,
) {
    for j in 0..ar.len() {
        let k = j * stride;
        let wim = if conj_w { -tw_im[k] } else { tw_im[k] };
        let w = Complex32::new(tw_re[k], wim);
        let a = Complex32::new(ar[j], ai[j]);
        let y = Complex32::new(br[j], bi[j]) * w;
        let s = a + y;
        let d = a - y;
        ar[j] = s.re;
        ai[j] = s.im;
        br[j] = d.re;
        bi[j] = d.im;
    }
}

/// One split-layout DIF block across the butterfly index:
/// `a[j], b[j] ← a[j] + b[j], (a[j] − b[j])·w_j`.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn butterflies_dif_split(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    stride: usize,
    conj_w: bool,
    isa: Isa,
) {
    debug_assert!(
        ar.len() == ai.len() && ar.len() == br.len() && ar.len() == bi.len(),
        "butterflies_dif_split: plane length mismatch"
    );
    debug_assert!(
        ar.is_empty() || tw_re.len() > (ar.len() - 1) * stride,
        "butterflies_dif_split: twiddle table short"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma if ar.len() >= 8 => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection; table coverage per the debug assert and the
            // radix-2 schedule.
            unsafe {
                avx2_split::butterflies_dif_split_avx2(ar, ai, br, bi, tw_re, tw_im, stride, conj_w)
            }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon if ar.len() >= 4 => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe {
                neon_split::butterflies_dif_split_neon(ar, ai, br, bi, tw_re, tw_im, stride, conj_w)
            }
        }
        _ => butterflies_dif_split_scalar(ar, ai, br, bi, tw_re, tw_im, stride, conj_w),
    }
}

/// Scalar oracle for [`butterflies_dif_split`].
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn butterflies_dif_split_scalar(
    ar: &mut [f32],
    ai: &mut [f32],
    br: &mut [f32],
    bi: &mut [f32],
    tw_re: &[f32],
    tw_im: &[f32],
    stride: usize,
    conj_w: bool,
) {
    for j in 0..ar.len() {
        let k = j * stride;
        let wim = if conj_w { -tw_im[k] } else { tw_im[k] };
        let w = Complex32::new(tw_re[k], wim);
        let a = Complex32::new(ar[j], ai[j]);
        let b = Complex32::new(br[j], bi[j]);
        let s = a + b;
        let d = (a - b) * w;
        ar[j] = s.re;
        ai[j] = s.im;
        br[j] = d.re;
        bi[j] = d.im;
    }
}

/// Split an interleaved complex slice into separate re/im planes.
#[inline]
pub fn deinterleave(src: &[Complex32], re: &mut [f32], im: &mut [f32], isa: Isa) {
    debug_assert!(
        src.len() == re.len() && src.len() == im.len(),
        "deinterleave: length mismatch"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection.
            unsafe { avx2_split::deinterleave_avx2(src, re, im) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe { neon_split::deinterleave_neon(src, re, im) }
        }
        _ => deinterleave_scalar(src, re, im),
    }
}

/// Scalar oracle for [`deinterleave`].
#[inline]
pub fn deinterleave_scalar(src: &[Complex32], re: &mut [f32], im: &mut [f32]) {
    for (z, (r, i)) in src.iter().zip(re.iter_mut().zip(im.iter_mut())) {
        *r = z.re;
        *i = z.im;
    }
}

/// Merge separate re/im planes into an interleaved complex slice.
#[inline]
pub fn interleave(re: &[f32], im: &[f32], out: &mut [Complex32], isa: Isa) {
    debug_assert!(
        out.len() == re.len() && out.len() == im.len(),
        "interleave: length mismatch"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection.
            unsafe { avx2_split::interleave_avx2(re, im, out) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe { neon_split::interleave_neon(re, im, out) }
        }
        _ => interleave_scalar(re, im, out),
    }
}

/// Scalar oracle for [`interleave`].
#[inline]
pub fn interleave_scalar(re: &[f32], im: &[f32], out: &mut [Complex32]) {
    for (z, (r, i)) in out.iter_mut().zip(re.iter().zip(im.iter())) {
        *z = Complex32::new(*r, *i);
    }
}

/// Out-of-place f32 transpose: `dst[c·rows + r] = src[r·cols + c]`.
/// This is the lane-layout conversion between the row and column passes
/// of the batch-major 2-D transform; the SIMD bodies work in 8×8 (AVX2
/// unpack/shuffle/permute2f128) or 4×4 (NEON `vtrn1q/vtrn2q`) blocks.
#[inline]
pub fn transpose_f32(src: &[f32], rows: usize, cols: usize, dst: &mut [f32], isa: Isa) {
    debug_assert!(src.len() >= rows * cols, "transpose_f32: src short");
    debug_assert!(dst.len() >= rows * cols, "transpose_f32: dst short");
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection; src/dst cover rows·cols per the debug asserts
            // (callers pass exact-size planes).
            unsafe { avx2_split::transpose_f32_avx2(src, rows, cols, dst) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe { neon_split::transpose_f32_neon(src, rows, cols, dst) }
        }
        _ => transpose_f32_scalar(src, rows, cols, dst),
    }
}

/// Scalar oracle for [`transpose_f32`]: blocked loops so even the
/// fallback stays cache-aware.
pub fn transpose_f32_scalar(src: &[f32], rows: usize, cols: usize, dst: &mut [f32]) {
    const B: usize = 32;
    let mut r0 = 0;
    while r0 < rows {
        let r1 = (r0 + B).min(rows);
        let mut c0 = 0;
        while c0 < cols {
            let c1 = (c0 + B).min(cols);
            for r in r0..r1 {
                for c in c0..c1 {
                    dst[c * rows + r] = src[r * cols + c];
                }
            }
            c0 = c1;
        }
        r0 = r1;
    }
}

/// Split-plane complex multiply-accumulate:
/// `out += a · b` (or `a · conj(b)` when `conj_b`), all operands as
/// separate re/im planes. The frequency-domain pointwise product in the
/// split layout — four FMAs per vector of lanes, no shuffle.
#[allow(clippy::too_many_arguments)]
#[inline]
pub fn cmac_split(
    ar: &[f32],
    ai: &[f32],
    br: &[f32],
    bi: &[f32],
    conj_b: bool,
    or_: &mut [f32],
    oi: &mut [f32],
    isa: Isa,
) {
    debug_assert!(
        ar.len() == ai.len()
            && ar.len() == br.len()
            && ar.len() == bi.len()
            && ar.len() == or_.len()
            && ar.len() == oi.len(),
        "cmac_split: plane length mismatch"
    );
    match isa {
        #[cfg(target_arch = "x86_64")]
        Isa::Avx2Fma => {
            // SAFETY: Avx2Fma is only returned after runtime AVX2+FMA
            // detection.
            unsafe { avx2_split::cmac_split_avx2(ar, ai, br, bi, conj_b, or_, oi) }
        }
        #[cfg(target_arch = "aarch64")]
        Isa::Neon => {
            // SAFETY: NEON is baseline on AArch64.
            unsafe { neon_split::cmac_split_neon(ar, ai, br, bi, conj_b, or_, oi) }
        }
        _ => cmac_split_scalar(ar, ai, br, bi, conj_b, or_, oi),
    }
}

/// Scalar oracle for [`cmac_split`].
#[inline]
pub fn cmac_split_scalar(
    ar: &[f32],
    ai: &[f32],
    br: &[f32],
    bi: &[f32],
    conj_b: bool,
    or_: &mut [f32],
    oi: &mut [f32],
) {
    for j in 0..ar.len() {
        let a = Complex32::new(ar[j], ai[j]);
        let b = Complex32::new(br[j], bi[j]);
        let b = if conj_b { b.conj() } else { b };
        let p = a * b;
        or_[j] += p.re;
        oi[j] += p.im;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::FftPlan;
    use crate::Direction;

    fn signal(n: usize, seed: f32) -> Vec<Complex32> {
        (0..n)
            .map(|i| Complex32::new((i as f32 * seed).sin(), (i as f32 * (seed + 0.7)).cos()))
            .collect()
    }

    /// Wide and scalar butterfly bodies must agree on every span and
    /// stride a radix-2 schedule produces, including the scalar tail
    /// (span not a multiple of 4 only happens at span < 4, but the
    /// kernels accept any length).
    #[test]
    fn wide_matches_scalar_all_stages() {
        let n = 64;
        let plan = FftPlan::new(n);
        for dir in [Direction::Forward, Direction::Inverse] {
            let tw = plan.table(dir);
            let mut span = 1;
            while span < n {
                let stride = n / (span * 2);
                for dif in [false, true] {
                    let mut a = signal(span, 0.31);
                    let mut b = signal(span, 0.47);
                    let mut ar = a.clone();
                    let mut br = b.clone();
                    if dif {
                        butterflies_dif(&mut a, &mut b, tw, stride, wide_butterflies());
                        butterflies_dif_scalar(&mut ar, &mut br, tw, stride);
                    } else {
                        butterflies_dit(&mut a, &mut b, tw, stride, wide_butterflies());
                        butterflies_dit_scalar(&mut ar, &mut br, tw, stride);
                    }
                    for j in 0..span {
                        assert!(
                            (a[j] - ar[j]).abs() < 1e-5 && (b[j] - br[j]).abs() < 1e-5,
                            "span {span} stride {stride} dif {dif} j {j}"
                        );
                    }
                }
                span *= 2;
            }
        }
    }

    #[test]
    fn scale_matches_per_element() {
        let mut x = signal(13, 0.9);
        let expect: Vec<Complex32> = x.iter().map(|z| z.scale(0.25)).collect();
        scale(&mut x, 0.25);
        assert_eq!(x, expect);
    }

    fn plane(n: usize, seed: f32) -> Vec<f32> {
        (0..n).map(|i| (i as f32 * seed + seed).sin()).collect()
    }

    /// Dispatched lane butterflies match the scalar oracle on lane
    /// counts that exercise full vectors, tails, and the all-tail case.
    #[test]
    fn lane_butterflies_match_scalar() {
        for lanes in [1usize, 3, 8, 13, 33] {
            for dif in [false, true] {
                let (wre, wim) = (0.31f32.cos(), -(0.31f32.sin()));
                let mut ar = plane(lanes, 0.31);
                let mut ai = plane(lanes, 0.47);
                let mut br = plane(lanes, 0.59);
                let mut bi = plane(lanes, 0.73);
                let (mut xr, mut xi, mut yr, mut yi) =
                    (ar.clone(), ai.clone(), br.clone(), bi.clone());
                if dif {
                    lane_butterflies_dif(&mut ar, &mut ai, &mut br, &mut bi, wre, wim, split_isa());
                    lane_butterflies_dif_scalar(&mut xr, &mut xi, &mut yr, &mut yi, wre, wim);
                } else {
                    lane_butterflies_dit(&mut ar, &mut ai, &mut br, &mut bi, wre, wim, split_isa());
                    lane_butterflies_dit_scalar(&mut xr, &mut xi, &mut yr, &mut yi, wre, wim);
                }
                for l in 0..lanes {
                    for (got, want) in [
                        (ar[l], xr[l]),
                        (ai[l], xi[l]),
                        (br[l], yr[l]),
                        (bi[l], yi[l]),
                    ] {
                        assert!(
                            (got - want).abs() < 1e-5,
                            "lanes {lanes} dif {dif} lane {l}: {got} vs {want}"
                        );
                    }
                }
            }
        }
    }

    /// Dispatched split-table butterflies match the scalar oracle for
    /// every stage geometry of a radix-2 schedule, both directions.
    #[test]
    fn split_butterflies_match_scalar_all_stages() {
        let n = 64;
        let plan = FftPlan::new(n);
        let (tw_re, tw_im) = plan.table_split();
        for conj_w in [false, true] {
            let mut span = 1;
            while span < n {
                let stride = n / (span * 2);
                for dif in [false, true] {
                    let mut ar = plane(span, 0.31);
                    let mut ai = plane(span, 0.47);
                    let mut br = plane(span, 0.59);
                    let mut bi = plane(span, 0.73);
                    let (mut xr, mut xi, mut yr, mut yi) =
                        (ar.clone(), ai.clone(), br.clone(), bi.clone());
                    if dif {
                        butterflies_dif_split(
                            &mut ar,
                            &mut ai,
                            &mut br,
                            &mut bi,
                            tw_re,
                            tw_im,
                            stride,
                            conj_w,
                            split_isa(),
                        );
                        butterflies_dif_split_scalar(
                            &mut xr, &mut xi, &mut yr, &mut yi, tw_re, tw_im, stride, conj_w,
                        );
                    } else {
                        butterflies_dit_split(
                            &mut ar,
                            &mut ai,
                            &mut br,
                            &mut bi,
                            tw_re,
                            tw_im,
                            stride,
                            conj_w,
                            split_isa(),
                        );
                        butterflies_dit_split_scalar(
                            &mut xr, &mut xi, &mut yr, &mut yi, tw_re, tw_im, stride, conj_w,
                        );
                    }
                    for j in 0..span {
                        assert!(
                            (ar[j] - xr[j]).abs() < 1e-5
                                && (ai[j] - xi[j]).abs() < 1e-5
                                && (br[j] - yr[j]).abs() < 1e-5
                                && (bi[j] - yi[j]).abs() < 1e-5,
                            "span {span} stride {stride} dif {dif} conj {conj_w} j {j}"
                        );
                    }
                }
                span *= 2;
            }
        }
    }

    /// interleave ∘ deinterleave is the identity, and both match the
    /// scalar oracles bit-exactly (pure data movement).
    #[test]
    fn interleave_roundtrip_and_matches_scalar() {
        for n in [1usize, 4, 7, 8, 15, 16, 33] {
            let src = signal(n, 0.37);
            let mut re = vec![0.0f32; n];
            let mut im = vec![0.0f32; n];
            deinterleave(&src, &mut re, &mut im, split_isa());
            let mut re_ref = vec![0.0f32; n];
            let mut im_ref = vec![0.0f32; n];
            deinterleave_scalar(&src, &mut re_ref, &mut im_ref);
            assert_eq!(re, re_ref, "n {n}");
            assert_eq!(im, im_ref, "n {n}");
            let mut back = vec![Complex32::ZERO; n];
            interleave(&re, &im, &mut back, split_isa());
            assert_eq!(back, src, "n {n}");
        }
    }

    /// Blocked SIMD transpose matches the scalar oracle bit-exactly on
    /// square, tall, wide, and remainder-heavy shapes.
    #[test]
    fn transpose_matches_scalar() {
        for (rows, cols) in [(1, 1), (8, 8), (16, 16), (5, 9), (9, 5), (33, 17), (64, 33)] {
            let src = plane(rows * cols, 0.17);
            let mut got = vec![0.0f32; rows * cols];
            let mut want = vec![0.0f32; rows * cols];
            transpose_f32(&src, rows, cols, &mut got, split_isa());
            transpose_f32_scalar(&src, rows, cols, &mut want);
            assert_eq!(got, want, "{rows}x{cols}");
            // And it really is the transpose.
            for r in 0..rows {
                for c in 0..cols {
                    assert_eq!(
                        got[c * rows + r],
                        src[r * cols + c],
                        "{rows}x{cols} ({r},{c})"
                    );
                }
            }
        }
    }

    /// Split cmac matches the interleaved `cmac` primitive and its own
    /// scalar oracle, both directions of `conj_b`.
    #[test]
    fn cmac_split_matches_scalar() {
        for n in [1usize, 8, 13, 32] {
            for conj_b in [false, true] {
                let ar = plane(n, 0.21);
                let ai = plane(n, 0.33);
                let br = plane(n, 0.41);
                let bi = plane(n, 0.57);
                let mut or_ = plane(n, 0.61);
                let mut oi = plane(n, 0.71);
                let mut or_ref = or_.clone();
                let mut oi_ref = oi.clone();
                cmac_split(&ar, &ai, &br, &bi, conj_b, &mut or_, &mut oi, split_isa());
                cmac_split_scalar(&ar, &ai, &br, &bi, conj_b, &mut or_ref, &mut oi_ref);
                for j in 0..n {
                    assert!(
                        (or_[j] - or_ref[j]).abs() < 1e-5 && (oi[j] - oi_ref[j]).abs() < 1e-5,
                        "n {n} conj {conj_b} j {j}"
                    );
                }
            }
        }
    }
}
