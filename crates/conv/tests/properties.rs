//! Cross-strategy property tests: the paper's three convolution
//! strategies must agree with each other and with the naive reference on
//! arbitrary valid geometries.

use gcnn_conv::{reference, ConvAlgorithm, ConvConfig, DirectConv, FftConv, UnrollConv};
use gcnn_tensor::init::uniform_tensor;
use proptest::prelude::*;

fn small_config() -> impl Strategy<Value = ConvConfig> {
    (
        1usize..4,  // batch
        1usize..4,  // channels
        3usize..11, // input
        1usize..6,  // filters
        1usize..4,  // kernel
        1usize..3,  // stride
        0usize..2,  // pad
    )
        .prop_map(|(b, c, i, f, k, s, p)| {
            let mut cfg = ConvConfig::with_channels(b, c, i, f, k, s);
            cfg.pad = p;
            cfg
        })
        .prop_filter("valid geometry", |cfg| cfg.is_valid())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn direct_equals_reference(cfg in small_config(), seed in 0u64..1000) {
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 1);
        let fast = DirectConv.forward(&cfg, &x, &w);
        let slow = reference::forward_ref(&cfg, &x, &w);
        prop_assert!(fast.max_abs_diff(&slow).unwrap() < 1e-3, "at {cfg}");
    }

    #[test]
    fn unroll_equals_direct(cfg in small_config(), seed in 0u64..1000) {
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 2);
        let a = UnrollConv.forward(&cfg, &x, &w);
        let b = DirectConv.forward(&cfg, &x, &w);
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3, "at {cfg}");
    }

    /// The packed NCHWc direct path agrees with the planar direct
    /// algorithm on arbitrary valid geometries — remainder channels,
    /// stride, padding. Accumulation orders differ ((cb, ky, kx, ci)
    /// packed vs (c, ky, kx) planar), so the bound budgets ulps; under
    /// `GCNN_FORCE_SCALAR=1` (the CI force-scalar job) both sides run
    /// the scalar kernels and the same bound pins scalar-vs-scalar.
    #[test]
    fn nchwc_equals_direct(cfg in small_config(), seed in 0u64..1000) {
        prop_assume!(gcnn_conv::nchwc::supports(&cfg).is_ok());
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 7);
        let a = gcnn_conv::nchwc::forward_planar(&cfg, &x, &w, false);
        let b = DirectConv.forward(&cfg, &x, &w);
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3, "at {cfg}");
    }

    /// Fusing the activation into the conv tile must be *bit*-identical
    /// to convolving and then applying ReLU separately: the conv
    /// numerics are the same code path, only the activation placement
    /// differs. Holds on every ISA, including `GCNN_FORCE_SCALAR=1`.
    #[test]
    fn fused_relu_bitwise_equals_unfused(cfg in small_config(), seed in 0u64..1000) {
        prop_assume!(gcnn_conv::nchwc::supports(&cfg).is_ok());
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 8);
        let unfused = gcnn_conv::layers::ReluLayer
            .forward(&gcnn_conv::nchwc::forward_planar(&cfg, &x, &w, false));
        let fused = gcnn_conv::nchwc::forward_planar(&cfg, &x, &w, true);
        prop_assert_eq!(fused.as_slice(), unfused.as_slice(), "at {}", cfg);
    }

    #[test]
    fn fft_equals_reference_when_supported(cfg in small_config(), seed in 0u64..1000) {
        prop_assume!(FftConv.supports(&cfg).is_ok());
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 3);
        let fast = FftConv.forward(&cfg, &x, &w);
        let slow = reference::forward_ref(&cfg, &x, &w);
        prop_assert!(fast.rel_l2_dist(&slow).unwrap() < 1e-3, "at {cfg}");
    }

    #[test]
    fn backward_data_consistent_across_strategies(cfg in small_config(), seed in 0u64..1000) {
        let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, seed);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 4);
        let a = DirectConv.backward_data(&cfg, &g, &w);
        let b = UnrollConv.backward_data(&cfg, &g, &w);
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-3, "at {cfg}");
        if FftConv.supports(&cfg).is_ok() {
            let c = FftConv.backward_data(&cfg, &g, &w);
            prop_assert!(a.rel_l2_dist(&c).unwrap() < 1e-3, "fft at {cfg}");
        }
    }

    #[test]
    fn backward_filters_consistent_across_strategies(cfg in small_config(), seed in 0u64..1000) {
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, seed + 5);
        let a = DirectConv.backward_filters(&cfg, &x, &g);
        let b = UnrollConv.backward_filters(&cfg, &x, &g);
        prop_assert!(a.max_abs_diff(&b).unwrap() < 1e-2, "at {cfg}");
        if FftConv.supports(&cfg).is_ok() {
            let c = FftConv.backward_filters(&cfg, &x, &g);
            prop_assert!(a.rel_l2_dist(&c).unwrap() < 1e-3, "fft at {cfg}");
        }
    }

    /// Convolution is linear in the input: f(x1 + x2) == f(x1) + f(x2).
    #[test]
    fn forward_linear_in_input(cfg in small_config(), seed in 0u64..1000) {
        let x1 = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed);
        let x2 = uniform_tensor(cfg.input_shape(), -1.0, 1.0, seed + 6);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, seed + 7);

        let mut xsum = x1.clone();
        xsum.axpy(1.0, &x2).unwrap();

        let mut ysum = UnrollConv.forward(&cfg, &x1, &w);
        let y2 = UnrollConv.forward(&cfg, &x2, &w);
        ysum.axpy(1.0, &y2).unwrap();

        let direct = UnrollConv.forward(&cfg, &xsum, &w);
        prop_assert!(direct.max_abs_diff(&ysum).unwrap() < 1e-3, "at {cfg}");
    }
}

/// Repeating a forward+backward pass with unchanged shapes must be
/// steady-state allocation-free: the second round draws every scratch
/// buffer (im2col columns, GEMM packs, FFT spectra) from the arena.
#[test]
fn repeated_conv_is_steady_state_allocation_free() {
    let mut cfg = ConvConfig::with_channels(2, 3, 16, 4, 3, 1);
    cfg.pad = 1;
    let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 21);
    let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 22);

    for algo in [&UnrollConv as &dyn ConvAlgorithm, &FftConv] {
        let round = || {
            let y = algo.forward(&cfg, &x, &w);
            let _gw = algo.backward_filters(&cfg, &x, &y);
            let _gx = algo.backward_data(&cfg, &y, &w);
        };
        round(); // warm the thread-local pools
        let (_, misses) = gcnn_tensor::workspace::alloc_scope(round);
        assert_eq!(
            misses,
            0,
            "second identical {:?} round took {misses} fresh allocations",
            algo.strategy()
        );
    }
}
