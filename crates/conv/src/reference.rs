//! Naive reference convolution — the ground truth every strategy is
//! tested against.
//!
//! Plain nested loops, written for obviousness rather than speed. CNNs
//! compute *cross-correlation* (no kernel flip); all passes here follow
//! that convention.

use crate::config::ConvConfig;
use gcnn_tensor::Tensor4;

/// Forward pass: `out[n,f,oy,ox] = Σ_{c,ky,kx} in[n,c,oy·s+ky−p,ox·s+kx−p] · w[f,c,ky,kx]`.
pub fn forward_ref(cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4 {
    assert_eq!(input.shape(), cfg.input_shape(), "forward_ref: input shape");
    assert_eq!(
        filters.shape(),
        cfg.filter_shape(),
        "forward_ref: filter shape"
    );
    let o = cfg.output();
    let (k, s, p) = (cfg.kernel, cfg.stride, cfg.pad);
    let i = cfg.input;

    Tensor4::from_fn(cfg.output_shape(), |n, f, oy, ox| {
        let mut acc = 0.0f32;
        for c in 0..cfg.channels {
            for ky in 0..k {
                let iy = oy * s + ky;
                if iy < p || iy - p >= i {
                    continue;
                }
                for kx in 0..k {
                    let ix = ox * s + kx;
                    if ix < p || ix - p >= i {
                        continue;
                    }
                    acc += input.get(n, c, iy - p, ix - p) * filters.get(f, c, ky, kx);
                }
            }
        }
        let _ = o;
        acc
    })
}

/// Backward-data pass: gradient of the loss w.r.t. the input, given the
/// gradient w.r.t. the output.
pub fn backward_data_ref(cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4 {
    assert_eq!(
        grad_out.shape(),
        cfg.output_shape(),
        "backward_data_ref: grad shape"
    );
    assert_eq!(
        filters.shape(),
        cfg.filter_shape(),
        "backward_data_ref: filter shape"
    );
    let o = cfg.output();
    let (k, s, p) = (cfg.kernel, cfg.stride, cfg.pad);

    let mut grad_in = Tensor4::zeros(cfg.input_shape());
    for n in 0..cfg.batch {
        for f in 0..cfg.filters {
            for oy in 0..o {
                for ox in 0..o {
                    let g = grad_out.get(n, f, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for c in 0..cfg.channels {
                        for ky in 0..k {
                            let iy = oy * s + ky;
                            if iy < p || iy - p >= cfg.input {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox * s + kx;
                                if ix < p || ix - p >= cfg.input {
                                    continue;
                                }
                                grad_in.add_at(n, c, iy - p, ix - p, g * filters.get(f, c, ky, kx));
                            }
                        }
                    }
                }
            }
        }
    }
    grad_in
}

/// Backward-weights pass: gradient of the loss w.r.t. the filter bank.
pub fn backward_filters_ref(cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
    assert_eq!(
        input.shape(),
        cfg.input_shape(),
        "backward_filters_ref: input shape"
    );
    assert_eq!(
        grad_out.shape(),
        cfg.output_shape(),
        "backward_filters_ref: grad shape"
    );
    let o = cfg.output();
    let (k, s, p) = (cfg.kernel, cfg.stride, cfg.pad);

    let mut grad_w = Tensor4::zeros(cfg.filter_shape());
    for n in 0..cfg.batch {
        for f in 0..cfg.filters {
            for oy in 0..o {
                for ox in 0..o {
                    let g = grad_out.get(n, f, oy, ox);
                    if g == 0.0 {
                        continue;
                    }
                    for c in 0..cfg.channels {
                        for ky in 0..k {
                            let iy = oy * s + ky;
                            if iy < p || iy - p >= cfg.input {
                                continue;
                            }
                            for kx in 0..k {
                                let ix = ox * s + kx;
                                if ix < p || ix - p >= cfg.input {
                                    continue;
                                }
                                grad_w.add_at(f, c, ky, kx, g * input.get(n, c, iy - p, ix - p));
                            }
                        }
                    }
                }
            }
        }
    }
    grad_w
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_tensor::Shape4;

    #[test]
    fn identity_filter_passes_input_through() {
        // 1x1 kernel of weight 1: output == input.
        let cfg = ConvConfig::with_channels(2, 1, 4, 1, 1, 1);
        let input = Tensor4::from_fn(cfg.input_shape(), |n, _, h, w| (n * 16 + h * 4 + w) as f32);
        let filters = Tensor4::full(cfg.filter_shape(), 1.0);
        let out = forward_ref(&cfg, &input, &filters);
        assert_eq!(out.as_slice(), input.as_slice());
    }

    #[test]
    fn box_filter_sums_window() {
        let cfg = ConvConfig::with_channels(1, 1, 3, 1, 2, 1);
        let input =
            Tensor4::from_vec(cfg.input_shape(), (0..9).map(|i| i as f32).collect()).unwrap();
        let filters = Tensor4::full(cfg.filter_shape(), 1.0);
        let out = forward_ref(&cfg, &input, &filters);
        // Windows: [0,1,3,4]=8, [1,2,4,5]=12, [3,4,6,7]=20, [4,5,7,8]=24.
        assert_eq!(out.as_slice(), &[8.0, 12.0, 20.0, 24.0]);
    }

    #[test]
    fn multi_channel_accumulates() {
        let cfg = ConvConfig::with_channels(1, 2, 2, 1, 2, 1);
        let input = Tensor4::full(cfg.input_shape(), 1.0);
        let filters = Tensor4::full(cfg.filter_shape(), 0.5);
        let out = forward_ref(&cfg, &input, &filters);
        // 2 channels × 4 taps × 1.0 × 0.5 = 4.
        assert_eq!(out.get(0, 0, 0, 0), 4.0);
    }

    #[test]
    fn stride_subsamples() {
        let cfg = ConvConfig::with_channels(1, 1, 5, 1, 1, 2);
        let input = Tensor4::from_fn(cfg.input_shape(), |_, _, h, w| (h * 5 + w) as f32);
        let filters = Tensor4::full(cfg.filter_shape(), 1.0);
        let out = forward_ref(&cfg, &input, &filters);
        assert_eq!(out.shape(), Shape4::new(1, 1, 3, 3));
        assert_eq!(out.get(0, 0, 1, 1), 12.0);
        assert_eq!(out.get(0, 0, 2, 2), 24.0);
    }

    #[test]
    fn padding_extends_border() {
        let mut cfg = ConvConfig::with_channels(1, 1, 2, 1, 3, 1);
        cfg.pad = 1;
        assert_eq!(cfg.output(), 2);
        let input = Tensor4::full(cfg.input_shape(), 1.0);
        let filters = Tensor4::full(cfg.filter_shape(), 1.0);
        let out = forward_ref(&cfg, &input, &filters);
        // Every 3x3 window sees exactly the 4 real pixels.
        assert!(out.as_slice().iter().all(|&v| v == 4.0));
    }

    /// <forward(x), g> == <x, backward_data(g)> — adjointness of the
    /// linear map, the defining property of a correct gradient.
    #[test]
    fn backward_data_is_adjoint_of_forward() {
        let cfg = ConvConfig::with_channels(2, 3, 6, 4, 3, 1);
        let x = gcnn_tensor::init::uniform_tensor(cfg.input_shape(), -1.0, 1.0, 1);
        let w = gcnn_tensor::init::uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 2);
        let g = gcnn_tensor::init::uniform_tensor(cfg.output_shape(), -1.0, 1.0, 3);

        let y = forward_ref(&cfg, &x, &w);
        let gx = backward_data_ref(&cfg, &g, &w);

        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(gx.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    /// Same adjoint identity in the filter direction.
    #[test]
    fn backward_filters_is_adjoint_in_w() {
        let cfg = ConvConfig::with_channels(2, 2, 5, 3, 2, 2);
        let x = gcnn_tensor::init::uniform_tensor(cfg.input_shape(), -1.0, 1.0, 4);
        let w = gcnn_tensor::init::uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 5);
        let g = gcnn_tensor::init::uniform_tensor(cfg.output_shape(), -1.0, 1.0, 6);

        let y = forward_ref(&cfg, &x, &w);
        let gw = backward_filters_ref(&cfg, &x, &g);

        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = w
            .as_slice()
            .iter()
            .zip(gw.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }
}
