//! The non-convolutional CNN layers.
//!
//! The paper's Fig. 2 breaks real CNN models into convolutional,
//! pooling, ReLU, fully-connected and concat layers; this module
//! provides all of them (forward + backward) so `gcnn-models` can run
//! complete AlexNet/VGG/GoogLeNet/OverFeat/LeNet-5 iterations.

pub mod concat;
pub mod fc;
pub mod pooling;
pub mod relu;
pub mod softmax;

pub use concat::ConcatLayer;
pub use fc::FcLayer;
pub use pooling::{PoolForward, PoolKind, PoolLayer};
pub use relu::ReluLayer;
pub use softmax::{softmax_cross_entropy, SoftmaxOutput};
