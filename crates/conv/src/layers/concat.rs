//! Channel concatenation — GoogLeNet's Inception-module join.
//!
//! The paper's Fig. 2 lists "Concat" among GoogLeNet's layer types: each
//! Inception module runs parallel convolution branches and concatenates
//! their outputs along the channel axis.

use gcnn_tensor::{Shape4, Tensor4};

/// Concatenate tensors along the channel axis.
#[derive(Debug, Clone, Copy, Default)]
pub struct ConcatLayer;

impl ConcatLayer {
    /// Create a new instance.
    pub fn new() -> Self {
        ConcatLayer
    }

    /// Forward: stack the inputs' channels. All inputs must share
    /// `(n, h, w)`.
    pub fn forward(&self, inputs: &[&Tensor4]) -> Tensor4 {
        assert!(!inputs.is_empty(), "ConcatLayer: no inputs");
        let first = inputs[0].shape();
        let total_c: usize = inputs
            .iter()
            .map(|t| {
                let s = t.shape();
                assert_eq!(
                    (s.n, s.h, s.w),
                    (first.n, first.h, first.w),
                    "ConcatLayer: mismatched (n, h, w)"
                );
                s.c
            })
            .sum();

        let mut out = Tensor4::zeros(Shape4::new(first.n, total_c, first.h, first.w));
        for n in 0..first.n {
            let mut c_off = 0;
            for t in inputs {
                let s = t.shape();
                for c in 0..s.c {
                    out.plane_mut(n, c_off + c).copy_from_slice(t.plane(n, c));
                }
                c_off += s.c;
            }
        }
        out
    }

    /// Backward: split the gradient back into per-branch gradients with
    /// the given channel counts.
    pub fn backward(&self, grad_out: &Tensor4, channel_splits: &[usize]) -> Vec<Tensor4> {
        let s = grad_out.shape();
        let total: usize = channel_splits.iter().sum();
        assert_eq!(
            total, s.c,
            "ConcatLayer::backward: splits must cover channels"
        );

        let mut outs: Vec<Tensor4> = channel_splits
            .iter()
            .map(|&c| Tensor4::zeros(Shape4::new(s.n, c, s.h, s.w)))
            .collect();
        for n in 0..s.n {
            let mut c_off = 0;
            for (branch, &c_count) in channel_splits.iter().enumerate() {
                for c in 0..c_count {
                    outs[branch]
                        .plane_mut(n, c)
                        .copy_from_slice(grad_out.plane(n, c_off + c));
                }
                c_off += c_count;
            }
        }
        outs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_stacks_channels() {
        let a = Tensor4::full(Shape4::new(2, 1, 2, 2), 1.0);
        let b = Tensor4::full(Shape4::new(2, 3, 2, 2), 2.0);
        let out = ConcatLayer.forward(&[&a, &b]);
        assert_eq!(out.shape(), Shape4::new(2, 4, 2, 2));
        assert_eq!(out.get(1, 0, 0, 0), 1.0);
        assert_eq!(out.get(1, 3, 1, 1), 2.0);
    }

    #[test]
    fn forward_backward_roundtrip() {
        let a = Tensor4::from_fn(Shape4::new(1, 2, 2, 2), |_, c, h, w| {
            (c * 4 + h * 2 + w) as f32
        });
        let b = Tensor4::from_fn(Shape4::new(1, 1, 2, 2), |_, _, h, w| {
            100.0 + (h * 2 + w) as f32
        });
        let cat = ConcatLayer.forward(&[&a, &b]);
        let parts = ConcatLayer.backward(&cat, &[2, 1]);
        assert_eq!(parts[0], a);
        assert_eq!(parts[1], b);
    }

    #[test]
    #[should_panic(expected = "mismatched")]
    fn rejects_mismatched_spatial() {
        let a = Tensor4::zeros(Shape4::new(1, 1, 2, 2));
        let b = Tensor4::zeros(Shape4::new(1, 1, 3, 3));
        ConcatLayer.forward(&[&a, &b]);
    }

    #[test]
    #[should_panic(expected = "splits must cover")]
    fn rejects_bad_splits() {
        let g = Tensor4::zeros(Shape4::new(1, 4, 2, 2));
        ConcatLayer.backward(&g, &[1, 2]);
    }
}
