//! Rectified linear unit.

use gcnn_tensor::Tensor4;
use rayon::prelude::*;

/// Elementwise `max(0, x)` with the standard subgradient backward pass.
#[derive(Debug, Clone, Copy, Default)]
pub struct ReluLayer;

impl ReluLayer {
    /// Create a new instance.
    pub fn new() -> Self {
        ReluLayer
    }

    /// Forward pass: `y = max(0, x)`.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        let data: Vec<f32> = input.as_slice().par_iter().map(|&x| x.max(0.0)).collect();
        Tensor4::from_vec(input.shape(), data).expect("relu preserves shape")
    }

    /// Backward pass: gradient passes where the *input* was positive.
    pub fn backward(&self, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        assert_eq!(
            input.shape(),
            grad_out.shape(),
            "ReluLayer::backward: shapes"
        );
        let data: Vec<f32> = input
            .as_slice()
            .par_iter()
            .zip(grad_out.as_slice())
            .map(|(&x, &g)| if x > 0.0 { g } else { 0.0 })
            .collect();
        Tensor4::from_vec(input.shape(), data).expect("relu preserves shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_tensor::Shape4;

    #[test]
    fn forward_clamps_negative() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 2.0, 0.0, -3.5]).unwrap();
        let y = ReluLayer.forward(&x);
        assert_eq!(y.as_slice(), &[0.0, 2.0, 0.0, 0.0]);
    }

    #[test]
    fn backward_masks_by_input_sign() {
        let x = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![-1.0, 2.0, 0.0, 3.0]).unwrap();
        let g = Tensor4::full(x.shape(), 7.0);
        let gin = ReluLayer.backward(&x, &g);
        assert_eq!(gin.as_slice(), &[0.0, 7.0, 0.0, 7.0]);
    }

    #[test]
    fn idempotent_on_nonnegative() {
        let x = Tensor4::from_fn(Shape4::new(2, 2, 3, 3), |n, c, h, w| (n + c + h + w) as f32);
        let y = ReluLayer.forward(&x);
        assert_eq!(y, x);
    }
}
