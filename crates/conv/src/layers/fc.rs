//! Fully-connected (inner-product) layer.
//!
//! Flattens each image to a vector and applies `y = W·x + b`. The three
//! FC layers at the tail of AlexNet/VGG/OverFeat (paper §I) are instances
//! of this; their compute is one SGEMM per mini-batch.

use gcnn_gemm::{sgemm, Transpose};
use gcnn_tensor::{Matrix, Shape4, Tensor4};

/// A fully-connected layer with weights `(out_features × in_features)`
/// and a bias vector.
#[derive(Debug, Clone)]
pub struct FcLayer {
    /// Weight matrix, row-major `(out_features, in_features)`.
    pub weights: Matrix,
    /// Bias, length `out_features`.
    pub bias: Vec<f32>,
}

/// Gradients produced by [`FcLayer::backward`].
pub struct FcGradients {
    /// Gradient w.r.t. the input, shaped like the forward input.
    pub grad_input: Tensor4,
    /// Gradient w.r.t. the weights.
    pub grad_weights: Matrix,
    /// Gradient w.r.t. the bias.
    pub grad_bias: Vec<f32>,
}

impl FcLayer {
    /// Construct with explicit parameters.
    pub fn new(weights: Matrix, bias: Vec<f32>) -> Self {
        assert_eq!(weights.rows(), bias.len(), "FcLayer: bias length");
        FcLayer { weights, bias }
    }

    /// Construct with Xavier-initialized weights and zero bias.
    pub fn xavier(out_features: usize, in_features: usize, seed: u64) -> Self {
        let bound = (6.0 / (in_features + out_features) as f32).sqrt();
        let weights =
            gcnn_tensor::init::uniform_matrix(out_features, in_features, -bound, bound, seed);
        FcLayer {
            weights,
            bias: vec![0.0; out_features],
        }
    }

    /// Input features consumed per image.
    pub fn in_features(&self) -> usize {
        self.weights.cols()
    }

    /// Output features produced per image.
    pub fn out_features(&self) -> usize {
        self.weights.rows()
    }

    /// Forward pass. The input may be any 4-D shape whose per-image
    /// volume equals `in_features`; output is `(b, out_features, 1, 1)`.
    ///
    /// Computed as one batch GEMM: `Y(b × out) = X(b × in) · Wᵀ`.
    pub fn forward(&self, input: &Tensor4) -> Tensor4 {
        let s = input.shape();
        let in_f = self.in_features();
        assert_eq!(s.image_len(), in_f, "FcLayer::forward: input volume");
        let out_f = self.out_features();

        let mut out = Tensor4::zeros(Shape4::new(s.n, out_f, 1, 1));
        sgemm(
            Transpose::No,
            Transpose::Yes,
            s.n,
            out_f,
            in_f,
            1.0,
            input.as_slice(),
            in_f,
            self.weights.as_slice(),
            in_f,
            0.0,
            out.as_mut_slice(),
            out_f,
        );
        for n in 0..s.n {
            for (o, &bv) in self.bias.iter().enumerate() {
                out.add_at(n, o, 0, 0, bv);
            }
        }
        out
    }

    /// Backward pass.
    pub fn backward(&self, input: &Tensor4, grad_out: &Tensor4) -> FcGradients {
        let s = input.shape();
        let (in_f, out_f) = (self.in_features(), self.out_features());
        assert_eq!(
            grad_out.shape(),
            Shape4::new(s.n, out_f, 1, 1),
            "FcLayer::backward: grad shape"
        );

        // dX(b × in) = dY(b × out) · W(out × in)
        let mut grad_input = Tensor4::zeros(s);
        sgemm(
            Transpose::No,
            Transpose::No,
            s.n,
            in_f,
            out_f,
            1.0,
            grad_out.as_slice(),
            out_f,
            self.weights.as_slice(),
            in_f,
            0.0,
            grad_input.as_mut_slice(),
            in_f,
        );

        // dW(out × in) = dYᵀ(out × b) · X(b × in)
        let mut grad_weights = Matrix::zeros(out_f, in_f);
        sgemm(
            Transpose::Yes,
            Transpose::No,
            out_f,
            in_f,
            s.n,
            1.0,
            grad_out.as_slice(),
            out_f,
            input.as_slice(),
            in_f,
            0.0,
            grad_weights.as_mut_slice(),
            in_f,
        );

        // db = column sums of dY.
        let mut grad_bias = vec![0.0f32; out_f];
        for n in 0..s.n {
            for (o, gb) in grad_bias.iter_mut().enumerate() {
                *gb += grad_out.get(n, o, 0, 0);
            }
        }

        FcGradients {
            grad_input,
            grad_weights,
            grad_bias,
        }
    }

    /// SGD update: `θ ← θ − lr·∇θ`.
    pub fn sgd_step(&mut self, grads: &FcGradients, lr: f32) {
        for (w, g) in self
            .weights
            .as_mut_slice()
            .iter_mut()
            .zip(grads.grad_weights.as_slice())
        {
            *w -= lr * g;
        }
        for (b, g) in self.bias.iter_mut().zip(&grads.grad_bias) {
            *b -= lr * g;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer_2x3() -> FcLayer {
        // W = [[1,0,2],[0,1,-1]], b = [0.5, -0.5]
        FcLayer::new(
            Matrix::from_vec(2, 3, vec![1.0, 0.0, 2.0, 0.0, 1.0, -1.0]).unwrap(),
            vec![0.5, -0.5],
        )
    }

    #[test]
    fn forward_known_values() {
        let layer = layer_2x3();
        let x = Tensor4::from_vec(Shape4::new(1, 3, 1, 1), vec![1.0, 2.0, 3.0]).unwrap();
        let y = layer.forward(&x);
        // [1 + 6 + 0.5, 2 - 3 - 0.5] = [7.5, -1.5]
        assert_eq!(y.as_slice(), &[7.5, -1.5]);
    }

    #[test]
    fn forward_accepts_spatial_input() {
        // (1, 3, 1, 1) and (1, 1, 3, 1) flatten identically.
        let layer = layer_2x3();
        let a = Tensor4::from_vec(Shape4::new(1, 3, 1, 1), vec![1.0, 2.0, 3.0]).unwrap();
        let b = Tensor4::from_vec(Shape4::new(1, 1, 3, 1), vec![1.0, 2.0, 3.0]).unwrap();
        assert_eq!(layer.forward(&a).as_slice(), layer.forward(&b).as_slice());
    }

    #[test]
    fn backward_gradients_match_finite_differences() {
        let mut layer = FcLayer::xavier(4, 6, 7);
        let x = gcnn_tensor::init::uniform_tensor(Shape4::new(3, 6, 1, 1), -1.0, 1.0, 8);
        let g = gcnn_tensor::init::uniform_tensor(Shape4::new(3, 4, 1, 1), -1.0, 1.0, 9);
        let grads = layer.backward(&x, &g);

        // Scalar objective L = <forward(x), g>; check dL/dw numerically.
        let eps = 1e-2;
        let loss = |l: &FcLayer| -> f32 {
            l.forward(&x)
                .as_slice()
                .iter()
                .zip(g.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for idx in [0usize, 5, 11, 23] {
            let orig = layer.weights.as_slice()[idx];
            layer.weights.as_mut_slice()[idx] = orig + eps;
            let lp = loss(&layer);
            layer.weights.as_mut_slice()[idx] = orig - eps;
            let lm = loss(&layer);
            layer.weights.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = grads.grad_weights.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-2 * analytic.abs().max(1.0),
                "w[{idx}]: numeric {numeric} analytic {analytic}"
            );
        }

        // Bias gradient: dL/db_o = Σ_n g[n, o].
        for o in 0..4 {
            let expect: f32 = (0..3).map(|n| g.get(n, o, 0, 0)).sum();
            assert!((grads.grad_bias[o] - expect).abs() < 1e-4);
        }
    }

    #[test]
    fn grad_input_is_adjoint() {
        let layer = FcLayer::xavier(5, 8, 17);
        let x = gcnn_tensor::init::uniform_tensor(Shape4::new(2, 8, 1, 1), -1.0, 1.0, 18);
        let g = gcnn_tensor::init::uniform_tensor(Shape4::new(2, 5, 1, 1), -1.0, 1.0, 19);
        let y = layer.forward(&x);
        let grads = layer.backward(&x, &g);

        // Remove the bias contribution: <y, g> = <Wx, g> + <b, Σg>.
        let bias_term: f32 = (0..2)
            .map(|n| {
                (0..5)
                    .map(|o| layer.bias[o] * g.get(n, o, 0, 0))
                    .sum::<f32>()
            })
            .sum();
        let lhs: f32 = y
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum::<f32>()
            - bias_term;
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(grads.grad_input.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "{lhs} vs {rhs}"
        );
    }

    #[test]
    fn sgd_step_moves_against_gradient() {
        let mut layer = layer_2x3();
        let x = Tensor4::full(Shape4::new(1, 3, 1, 1), 1.0);
        let g = Tensor4::full(Shape4::new(1, 2, 1, 1), 1.0);
        let grads = layer.backward(&x, &g);
        let w0 = layer.weights.get(0, 0);
        layer.sgd_step(&grads, 0.1);
        assert!(layer.weights.get(0, 0) < w0);
        assert!((layer.bias[0] - 0.4).abs() < 1e-6);
    }
}
