//! Spatial pooling layers.
//!
//! Paper §II-A: pooling layers "reduce the spatial size of feature map
//! and control the over-fitting problem to some extent". Max pooling
//! records argmax indices on the forward pass so the backward pass can
//! route gradients; average pooling distributes them uniformly.

use gcnn_tensor::{Shape4, Tensor4};
use rayon::prelude::*;

/// Pooling operator kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolKind {
    /// Maximum over the window.
    Max,
    /// Arithmetic mean over the window.
    Average,
}

/// A pooling layer with square window and stride.
#[derive(Debug, Clone)]
pub struct PoolLayer {
    /// Operator kind.
    pub kind: PoolKind,
    /// Square window size.
    pub window: usize,
    /// Stride.
    pub stride: usize,
}

/// Forward result: pooled tensor plus (for max pooling) the flat input
/// index each output element was taken from.
pub struct PoolForward {
    /// Pooled output.
    pub output: Tensor4,
    /// For [`PoolKind::Max`]: per-output-element flat index into the
    /// input plane; empty for average pooling.
    pub argmax: Vec<u32>,
}

impl PoolLayer {
    /// Construct a pooling layer.
    pub fn new(kind: PoolKind, window: usize, stride: usize) -> Self {
        assert!(window > 0 && stride > 0, "PoolLayer: zero window/stride");
        PoolLayer {
            kind,
            window,
            stride,
        }
    }

    /// Output spatial size for an input of spatial size `i`.
    pub fn out_size(&self, i: usize) -> usize {
        assert!(i >= self.window, "PoolLayer: window exceeds input {i}");
        (i - self.window) / self.stride + 1
    }

    /// Forward pass.
    pub fn forward(&self, input: &Tensor4) -> PoolForward {
        let s = input.shape();
        let (oh, ow) = (self.out_size(s.h), self.out_size(s.w));
        let out_shape = Shape4::new(s.n, s.c, oh, ow);
        let mut output = Tensor4::zeros(out_shape);
        let mut argmax = if self.kind == PoolKind::Max {
            vec![0u32; out_shape.len()]
        } else {
            Vec::new()
        };

        let plane_out = oh * ow;
        let (win, st) = (self.window, self.stride);

        match self.kind {
            PoolKind::Max => {
                output
                    .as_mut_slice()
                    .par_chunks_mut(plane_out)
                    .zip(argmax.par_chunks_mut(plane_out))
                    .enumerate()
                    .for_each(|(p, (oplane, aplane))| {
                        let iplane = input.plane(p / s.c, p % s.c);
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut best = f32::NEG_INFINITY;
                                let mut best_idx = 0usize;
                                for ky in 0..win {
                                    for kx in 0..win {
                                        let idx = (oy * st + ky) * s.w + ox * st + kx;
                                        if iplane[idx] > best {
                                            best = iplane[idx];
                                            best_idx = idx;
                                        }
                                    }
                                }
                                oplane[oy * ow + ox] = best;
                                aplane[oy * ow + ox] = best_idx as u32;
                            }
                        }
                    });
            }
            PoolKind::Average => {
                let inv = 1.0 / (win * win) as f32;
                output
                    .as_mut_slice()
                    .par_chunks_mut(plane_out)
                    .enumerate()
                    .for_each(|(p, oplane)| {
                        let iplane = input.plane(p / s.c, p % s.c);
                        for oy in 0..oh {
                            for ox in 0..ow {
                                let mut acc = 0.0f32;
                                for ky in 0..win {
                                    for kx in 0..win {
                                        acc += iplane[(oy * st + ky) * s.w + ox * st + kx];
                                    }
                                }
                                oplane[oy * ow + ox] = acc * inv;
                            }
                        }
                    });
            }
        }

        PoolForward { output, argmax }
    }

    /// Backward pass: route `grad_out` back to the input positions.
    pub fn backward(&self, input_shape: Shape4, fwd: &PoolForward, grad_out: &Tensor4) -> Tensor4 {
        let s = input_shape;
        let go = grad_out.shape();
        assert_eq!(go, fwd.output.shape(), "PoolLayer::backward: grad shape");
        let mut grad_in = Tensor4::zeros(s);
        let plane_in = s.h * s.w;
        let plane_out = go.h * go.w;
        let (win, st) = (self.window, self.stride);

        match self.kind {
            PoolKind::Max => {
                for p in 0..s.n * s.c {
                    let gslice = &grad_out.as_slice()[p * plane_out..(p + 1) * plane_out];
                    let aslice = &fwd.argmax[p * plane_out..(p + 1) * plane_out];
                    let gin = &mut grad_in.as_mut_slice()[p * plane_in..(p + 1) * plane_in];
                    for (g, &a) in gslice.iter().zip(aslice) {
                        gin[a as usize] += g;
                    }
                }
            }
            PoolKind::Average => {
                let inv = 1.0 / (win * win) as f32;
                for p in 0..s.n * s.c {
                    let gslice = &grad_out.as_slice()[p * plane_out..(p + 1) * plane_out];
                    let gin = &mut grad_in.as_mut_slice()[p * plane_in..(p + 1) * plane_in];
                    for oy in 0..go.h {
                        for ox in 0..go.w {
                            let g = gslice[oy * go.w + ox] * inv;
                            for ky in 0..win {
                                for kx in 0..win {
                                    gin[(oy * st + ky) * s.w + ox * st + kx] += g;
                                }
                            }
                        }
                    }
                }
            }
        }
        grad_in
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_pool_known_values() {
        let input = Tensor4::from_vec(Shape4::new(1, 1, 4, 4), (0..16).map(|i| i as f32).collect())
            .unwrap();
        let layer = PoolLayer::new(PoolKind::Max, 2, 2);
        let fwd = layer.forward(&input);
        assert_eq!(fwd.output.as_slice(), &[5.0, 7.0, 13.0, 15.0]);
        assert_eq!(fwd.argmax, vec![5, 7, 13, 15]);
    }

    #[test]
    fn avg_pool_known_values() {
        let input = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 3.0, 5.0, 7.0]).unwrap();
        let layer = PoolLayer::new(PoolKind::Average, 2, 2);
        let fwd = layer.forward(&input);
        assert_eq!(fwd.output.as_slice(), &[4.0]);
    }

    #[test]
    fn overlapping_windows() {
        // AlexNet-style 3x3/2 overlapping pooling.
        let input = Tensor4::from_fn(Shape4::new(1, 1, 5, 5), |_, _, h, w| (h * 5 + w) as f32);
        let layer = PoolLayer::new(PoolKind::Max, 3, 2);
        let fwd = layer.forward(&input);
        assert_eq!(fwd.output.shape(), Shape4::new(1, 1, 2, 2));
        assert_eq!(fwd.output.as_slice(), &[12.0, 14.0, 22.0, 24.0]);
    }

    #[test]
    fn max_backward_routes_to_argmax() {
        let input = Tensor4::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 9.0, 2.0, 3.0]).unwrap();
        let layer = PoolLayer::new(PoolKind::Max, 2, 2);
        let fwd = layer.forward(&input);
        let g = Tensor4::full(fwd.output.shape(), 5.0);
        let gin = layer.backward(input.shape(), &fwd, &g);
        assert_eq!(gin.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_backward_distributes_uniformly() {
        let input = Tensor4::full(Shape4::new(1, 1, 2, 2), 1.0);
        let layer = PoolLayer::new(PoolKind::Average, 2, 2);
        let fwd = layer.forward(&input);
        let g = Tensor4::full(fwd.output.shape(), 8.0);
        let gin = layer.backward(input.shape(), &fwd, &g);
        assert_eq!(gin.as_slice(), &[2.0, 2.0, 2.0, 2.0]);
    }

    /// Adjoint identity for average pooling (a linear map).
    #[test]
    fn avg_pool_adjoint() {
        let shape = Shape4::new(2, 3, 6, 6);
        let x = gcnn_tensor::init::uniform_tensor(shape, -1.0, 1.0, 40);
        let layer = PoolLayer::new(PoolKind::Average, 2, 2);
        let fwd = layer.forward(&x);
        let g = gcnn_tensor::init::uniform_tensor(fwd.output.shape(), -1.0, 1.0, 41);
        let gin = layer.backward(shape, &fwd, &g);

        let lhs: f32 = fwd
            .output
            .as_slice()
            .iter()
            .zip(g.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        let rhs: f32 = x
            .as_slice()
            .iter()
            .zip(gin.as_slice())
            .map(|(a, b)| a * b)
            .sum();
        assert!((lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0));
    }

    #[test]
    fn multi_plane_batches() {
        let input = Tensor4::from_fn(Shape4::new(2, 2, 4, 4), |n, c, h, w| {
            (n * 100 + c * 50 + h * 4 + w) as f32
        });
        let layer = PoolLayer::new(PoolKind::Max, 2, 2);
        let fwd = layer.forward(&input);
        assert_eq!(fwd.output.shape(), Shape4::new(2, 2, 2, 2));
        assert_eq!(fwd.output.get(1, 1, 1, 1), input.get(1, 1, 3, 3));
    }

    #[test]
    #[should_panic(expected = "window exceeds input")]
    fn rejects_window_larger_than_input() {
        let layer = PoolLayer::new(PoolKind::Max, 5, 1);
        layer.out_size(3);
    }
}
