//! Softmax + cross-entropy output layer.
//!
//! LeNet-5's final stage maps "high-level features to a probability
//! vector over ten different classes" (paper §II-A); this module
//! provides that mapping with the numerically-stable log-sum-exp form
//! and the fused gradient `p − onehot(label)`.

use gcnn_tensor::Tensor4;

/// Result of the fused softmax + cross-entropy computation.
pub struct SoftmaxOutput {
    /// Per-image class probabilities, `(b, classes, 1, 1)`.
    pub probs: Tensor4,
    /// Mean cross-entropy loss over the mini-batch.
    pub loss: f32,
    /// Gradient w.r.t. the logits (already divided by the batch size).
    pub grad_logits: Tensor4,
}

/// Compute softmax probabilities, mean cross-entropy loss against the
/// integer labels, and the gradient w.r.t. the logits.
///
/// `logits` must be `(b, classes, 1, 1)`; `labels` has length `b` with
/// entries `< classes`.
pub fn softmax_cross_entropy(logits: &Tensor4, labels: &[usize]) -> SoftmaxOutput {
    let s = logits.shape();
    assert_eq!(
        s.h * s.w,
        1,
        "softmax_cross_entropy: expected (b, classes, 1, 1)"
    );
    assert_eq!(labels.len(), s.n, "softmax_cross_entropy: label count");
    let classes = s.c;
    assert!(
        labels.iter().all(|&l| l < classes),
        "softmax_cross_entropy: label out of range"
    );

    let mut probs = Tensor4::zeros(s);
    let mut grad = Tensor4::zeros(s);
    let mut loss = 0.0f64;
    let inv_b = 1.0 / s.n as f32;

    for n in 0..s.n {
        let row = &logits.as_slice()[n * classes..(n + 1) * classes];
        let maxv = row.iter().fold(f32::NEG_INFINITY, |m, &x| m.max(x));
        let exps: Vec<f32> = row.iter().map(|&x| (x - maxv).exp()).collect();
        let denom: f32 = exps.iter().sum();
        let prow = &mut probs.as_mut_slice()[n * classes..(n + 1) * classes];
        for (p, e) in prow.iter_mut().zip(&exps) {
            *p = e / denom;
        }
        loss += -((prow[labels[n]] as f64).max(1e-30)).ln();
        let grow = &mut grad.as_mut_slice()[n * classes..(n + 1) * classes];
        for (g, &p) in grow.iter_mut().zip(prow.iter()) {
            *g = p * inv_b;
        }
        grow[labels[n]] -= inv_b;
    }

    SoftmaxOutput {
        probs,
        loss: (loss / s.n as f64) as f32,
        grad_logits: grad,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_tensor::Shape4;

    #[test]
    fn probabilities_sum_to_one() {
        let logits = gcnn_tensor::init::uniform_tensor(Shape4::new(3, 5, 1, 1), -3.0, 3.0, 50);
        let out = softmax_cross_entropy(&logits, &[0, 2, 4]);
        for n in 0..3 {
            let s: f32 = (0..5).map(|c| out.probs.get(n, c, 0, 0)).sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn uniform_logits_give_log_classes_loss() {
        let logits = Tensor4::zeros(Shape4::new(2, 10, 1, 1));
        let out = softmax_cross_entropy(&logits, &[3, 7]);
        assert!((out.loss - (10.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let mut logits = Tensor4::zeros(Shape4::new(1, 4, 1, 1));
        logits.set(0, 2, 0, 0, 20.0);
        let out = softmax_cross_entropy(&logits, &[2]);
        assert!(out.loss < 1e-4);
        // Gradient nearly zero everywhere.
        assert!(out.grad_logits.as_slice().iter().all(|g| g.abs() < 1e-4));
    }

    #[test]
    fn gradient_is_probs_minus_onehot() {
        let logits = gcnn_tensor::init::uniform_tensor(Shape4::new(2, 3, 1, 1), -1.0, 1.0, 51);
        let out = softmax_cross_entropy(&logits, &[1, 0]);
        for n in 0..2 {
            for c in 0..3 {
                let onehot = if (n == 0 && c == 1) || (n == 1 && c == 0) {
                    1.0
                } else {
                    0.0
                };
                let expect = (out.probs.get(n, c, 0, 0) - onehot) / 2.0;
                assert!((out.grad_logits.get(n, c, 0, 0) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut logits = gcnn_tensor::init::uniform_tensor(Shape4::new(2, 4, 1, 1), -1.0, 1.0, 52);
        let labels = [3usize, 1];
        let out = softmax_cross_entropy(&logits, &labels);
        let eps = 1e-2;
        for idx in 0..8 {
            let orig = logits.as_slice()[idx];
            logits.as_mut_slice()[idx] = orig + eps;
            let lp = softmax_cross_entropy(&logits, &labels).loss;
            logits.as_mut_slice()[idx] = orig - eps;
            let lm = softmax_cross_entropy(&logits, &labels).loss;
            logits.as_mut_slice()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = out.grad_logits.as_slice()[idx];
            assert!(
                (numeric - analytic).abs() < 1e-3,
                "logit {idx}: numeric {numeric} analytic {analytic}"
            );
        }
    }

    #[test]
    fn stable_under_large_logits() {
        let mut logits = Tensor4::zeros(Shape4::new(1, 3, 1, 1));
        logits.set(0, 0, 0, 0, 1000.0);
        logits.set(0, 1, 0, 0, 999.0);
        let out = softmax_cross_entropy(&logits, &[0]);
        assert!(out.loss.is_finite());
        assert!(out.probs.get(0, 0, 0, 0) > 0.7);
    }

    #[test]
    #[should_panic(expected = "label out of range")]
    fn rejects_bad_label() {
        let logits = Tensor4::zeros(Shape4::new(1, 3, 1, 1));
        softmax_cross_entropy(&logits, &[3]);
    }
}
