//! The convolution-strategy abstraction.
//!
//! Paper §II-B: *"mainstream CNN implementations follow three convolution
//! strategies: direct convolution, unrolling-based convolution, and
//! FFT-based convolution."* Each strategy is a [`ConvAlgorithm`]; the
//! seven framework models in `gcnn-frameworks` each delegate their
//! numerics to one of them.

use crate::config::ConvConfig;
use gcnn_tensor::{Tensor4, Workspace};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The three convolution strategies of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Sliding-window dot products (cuda-convnet2, Theano-legacy).
    Direct,
    /// im2col + GEMM (Caffe, Torch-cunn, Theano-CorrMM, cuDNN).
    Unrolling,
    /// Fourier-domain pointwise product (fbfft, Theano-fft).
    Fft,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Strategy::Direct => "direct",
            Strategy::Unrolling => "unrolling",
            Strategy::Fft => "fft",
        })
    }
}

/// Why a strategy (or framework) rejects a configuration — the paper's
/// "shape limitations" (§IV-B Summary).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Unsupported {
    /// FFT-based convolutions only support stride 1.
    StrideNotOne {
        /// The offending stride.
        stride: usize,
    },
    /// cuda-convnet2 requires the mini-batch to be a multiple of 32.
    BatchNotMultipleOf {
        /// Required divisor.
        multiple: usize,
        /// The offending batch size.
        batch: usize,
    },
    /// cuda-convnet2 requires the filter count to be a multiple of 16.
    FiltersNotMultipleOf {
        /// Required divisor.
        multiple: usize,
        /// The offending filter count.
        filters: usize,
    },
    /// The geometry itself is impossible (kernel larger than padded
    /// input, zero stride, …).
    InvalidGeometry {
        /// Human-readable description.
        reason: String,
    },
    /// The configuration exceeds the device's memory.
    OutOfMemory {
        /// Bytes requested.
        required: u64,
        /// Bytes available.
        available: u64,
    },
}

impl fmt::Display for Unsupported {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Unsupported::StrideNotOne { stride } => {
                write!(f, "FFT-based convolution requires stride 1, got {stride}")
            }
            Unsupported::BatchNotMultipleOf { multiple, batch } => {
                write!(f, "mini-batch {batch} is not a multiple of {multiple}")
            }
            Unsupported::FiltersNotMultipleOf { multiple, filters } => {
                write!(f, "filter count {filters} is not a multiple of {multiple}")
            }
            Unsupported::InvalidGeometry { reason } => write!(f, "invalid geometry: {reason}"),
            Unsupported::OutOfMemory {
                required,
                available,
            } => write!(
                f,
                "out of device memory: need {required} bytes, have {available}"
            ),
        }
    }
}

impl std::error::Error for Unsupported {}

/// A convolution algorithm: forward plus both backward passes.
///
/// Implementations must produce results matching
/// [`crate::reference`] up to `f32` rounding; the test suite enforces
/// this for every strategy.
pub trait ConvAlgorithm: Send + Sync {
    /// Which of the paper's three strategies this is.
    fn strategy(&self) -> Strategy;

    /// Shape restrictions. The default accepts any valid geometry.
    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        Ok(())
    }

    /// Forward pass: `(b,c,i,i) ⊛ (f,c,k,k) → (b,f,o,o)`.
    fn forward(&self, cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4;

    /// Gradient w.r.t. the input.
    fn backward_data(&self, cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4;

    /// Gradient w.r.t. the filter bank.
    fn backward_filters(&self, cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4;

    /// [`ConvAlgorithm::forward`] with an explicit [`Workspace`].
    ///
    /// The in-tree strategies draw their scratch from thread-local
    /// pools, so the handle carries no storage — it makes the reuse
    /// dependency visible in signatures (the training loop owns one
    /// workspace for the whole run) and gives external implementations
    /// a place to hang per-call scratch. Defaults delegate to the
    /// plain methods.
    fn forward_ws(
        &self,
        cfg: &ConvConfig,
        input: &Tensor4,
        filters: &Tensor4,
        ws: &mut Workspace,
    ) -> Tensor4 {
        let _ = ws;
        self.forward(cfg, input, filters)
    }

    /// [`ConvAlgorithm::backward_data`] with an explicit [`Workspace`].
    fn backward_data_ws(
        &self,
        cfg: &ConvConfig,
        grad_out: &Tensor4,
        filters: &Tensor4,
        ws: &mut Workspace,
    ) -> Tensor4 {
        let _ = ws;
        self.backward_data(cfg, grad_out, filters)
    }

    /// [`ConvAlgorithm::backward_filters`] with an explicit
    /// [`Workspace`].
    fn backward_filters_ws(
        &self,
        cfg: &ConvConfig,
        input: &Tensor4,
        grad_out: &Tensor4,
        ws: &mut Workspace,
    ) -> Tensor4 {
        let _ = ws;
        self.backward_filters(cfg, input, grad_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_names() {
        assert_eq!(Strategy::Direct.to_string(), "direct");
        assert_eq!(Strategy::Unrolling.to_string(), "unrolling");
        assert_eq!(Strategy::Fft.to_string(), "fft");
    }

    #[test]
    fn unsupported_messages() {
        assert!(Unsupported::StrideNotOne { stride: 2 }
            .to_string()
            .contains("stride 1"));
        assert!(Unsupported::BatchNotMultipleOf {
            multiple: 32,
            batch: 33
        }
        .to_string()
        .contains("multiple of 32"));
    }
}
