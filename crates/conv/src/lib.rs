//! # gcnn-conv
//!
//! The three convolution strategies of Li et al. (ICPP 2016) —
//! [`direct`], [`unroll`]ing (im2col + GEMM) and [`fft_conv`] — each
//! implementing forward, backward-data and backward-weights passes, plus
//! the remaining CNN [`layers`] (pooling, ReLU, fully-connected,
//! softmax, concat) and finite-difference [`gradcheck`]ing.
//!
//! Every strategy is validated against the naive [`reference`]
//! convolution and against each other; the FFT path additionally obeys
//! the convolution/correlation theorems tested in `gcnn-fft`.
//!
//! The entry points:
//!
//! * [`ConvConfig`] — the paper's `(b, i, f, k, s)` 5-tuple (plus
//!   channels and padding), including [`config::table1_configs`].
//! * [`ConvAlgorithm`] — the strategy trait, with implementations
//!   [`DirectConv`], [`UnrollConv`] and [`FftConv`].
//! * [`nchwc`] — the channel-blocked direct path with fused
//!   conv+ReLU(+pool) execution for inference.

#![forbid(unsafe_code)]

pub mod config;
pub mod direct;
pub mod fft_conv;
pub mod gradcheck;
pub mod grouped;
pub mod layers;
pub mod nchwc;
pub mod reference;
pub mod strategy;
pub mod unroll;
pub mod winograd;

pub use config::{table1_configs, ConvConfig, TABLE1_NAMES};
pub use direct::DirectConv;
pub use fft_conv::FftConv;
pub use grouped::GroupedConv;
pub use strategy::{ConvAlgorithm, Strategy, Unsupported};
pub use unroll::UnrollConv;
pub use winograd::WinogradConv;

/// All three strategies behind one constructor, for callers that select
/// at runtime.
// AUDIT: cold-path — boxes one algorithm object per layer at model build
// time; steady-state inference reuses the returned impl.
pub fn algorithm_for(strategy: Strategy) -> Box<dyn ConvAlgorithm> {
    match strategy {
        Strategy::Direct => Box::new(DirectConv::new()),
        Strategy::Unrolling => Box::new(UnrollConv::new()),
        Strategy::Fft => Box::new(FftConv::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn algorithm_for_returns_matching_strategy() {
        for s in [Strategy::Direct, Strategy::Unrolling, Strategy::Fft] {
            assert_eq!(algorithm_for(s).strategy(), s);
        }
    }
}
