//! Unrolling-based convolution: im2col + GEMM.
//!
//! Paper §II-B: the input's local regions are unrolled into the columns
//! of a matrix, the filter bank into rows, and the convolution becomes
//! one GEMM per image (Caffe, Torch-cunn, Theano-CorrMM; cuDNN fuses the
//! unroll into its tiled GEMM but is mathematically identical).
//!
//! * forward:           `Y(f × o²)  = W(f × ck²) · cols(ck² × o²)`
//! * backward-data:     `cols       = Wᵀ · G`, then `col2im`
//! * backward-weights:  `ΔW        += G · colsᵀ`, summed over the batch

use crate::config::ConvConfig;
use crate::strategy::{ConvAlgorithm, Strategy};
use gcnn_gemm::{sgemm, Transpose};
use gcnn_tensor::im2col::{col2im_from, im2col_into};
use gcnn_tensor::{workspace, Tensor4};
use rayon::prelude::*;

/// The unrolling (im2col + GEMM) convolution algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnrollConv;

impl UnrollConv {
    /// Create a new instance.
    pub fn new() -> Self {
        UnrollConv
    }
}

impl ConvAlgorithm for UnrollConv {
    fn strategy(&self) -> Strategy {
        Strategy::Unrolling
    }

    fn forward(&self, cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.unrolling.forward");
        assert_eq!(
            input.shape(),
            cfg.input_shape(),
            "UnrollConv::forward: input"
        );
        assert_eq!(
            filters.shape(),
            cfg.filter_shape(),
            "UnrollConv::forward: filters"
        );
        let geom = cfg.geometry();
        let o2 = cfg.output() * cfg.output();
        let ckk = cfg.channels * cfg.kernel * cfg.kernel;

        let mut out = Tensor4::zeros(cfg.output_shape());
        let image_out = cfg.filters * o2;
        out.as_mut_slice()
            .par_chunks_mut(image_out)
            .enumerate()
            .for_each(|(n, oimg)| {
                // Per-image unroll buffer — the `im2col_gpu_kernel`
                // workspace the paper's Fig. 5 memory analysis charges to
                // Caffe/Torch/Theano-CorrMM. Checked out of the
                // thread-local arena: steady-state iterations allocate
                // nothing. Not zeroed — im2col writes every element.
                let mut cols = workspace::take_f32(ckk * o2);
                im2col_into(input.image(n), &geom, &mut cols);
                sgemm(
                    Transpose::No,
                    Transpose::No,
                    cfg.filters,
                    o2,
                    ckk,
                    1.0,
                    filters.as_slice(),
                    ckk,
                    cols.as_slice(),
                    o2,
                    0.0,
                    oimg,
                    o2,
                );
            });
        out
    }

    fn backward_data(&self, cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.unrolling.backward_data");
        assert_eq!(
            grad_out.shape(),
            cfg.output_shape(),
            "UnrollConv::backward_data: grad"
        );
        let geom = cfg.geometry();
        let o2 = cfg.output() * cfg.output();
        let ckk = cfg.channels * cfg.kernel * cfg.kernel;

        let mut grad_in = Tensor4::zeros(cfg.input_shape());
        let image_in = cfg.channels * cfg.input * cfg.input;
        grad_in
            .as_mut_slice()
            .par_chunks_mut(image_in)
            .enumerate()
            .for_each(|(n, gimg)| {
                // Arena scratch; sgemm's beta = 0 overwrites every entry.
                let mut cols = workspace::take_f32(ckk * o2);
                sgemm(
                    Transpose::Yes,
                    Transpose::No,
                    ckk,
                    o2,
                    cfg.filters,
                    1.0,
                    filters.as_slice(),
                    ckk,
                    grad_out.image(n),
                    o2,
                    0.0,
                    &mut cols,
                    o2,
                );
                col2im_from(&cols, &geom, gimg);
            });
        grad_in
    }

    fn backward_filters(&self, cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.unrolling.backward_filters");
        let geom = cfg.geometry();
        let o2 = cfg.output() * cfg.output();
        let ckk = cfg.channels * cfg.kernel * cfg.kernel;

        // Per-image partial ΔW, tree-reduced: ΔW_n = G_n · cols_nᵀ.
        let zero = || vec![0.0f32; cfg.filters * ckk];
        let grad_w_flat = (0..cfg.batch)
            .into_par_iter()
            .fold(zero, |mut acc, n| {
                let mut cols = workspace::take_f32(ckk * o2);
                im2col_into(input.image(n), &geom, &mut cols);
                sgemm(
                    Transpose::No,
                    Transpose::Yes,
                    cfg.filters,
                    ckk,
                    o2,
                    1.0,
                    grad_out.image(n),
                    o2,
                    cols.as_slice(),
                    o2,
                    1.0,
                    &mut acc,
                    ckk,
                );
                acc
            })
            .reduce(zero, |mut a, b| {
                for (x, y) in a.iter_mut().zip(&b) {
                    *x += y;
                }
                a
            });

        Tensor4::from_vec(cfg.filter_shape(), grad_w_flat)
            .expect("backward_filters: f×ck² buffer matches filter shape")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gcnn_tensor::init::uniform_tensor;

    fn configs() -> Vec<ConvConfig> {
        vec![
            ConvConfig::with_channels(2, 3, 8, 4, 3, 1),
            ConvConfig::with_channels(1, 1, 6, 2, 1, 1),
            ConvConfig::with_channels(3, 2, 9, 5, 3, 2),
            ConvConfig::with_channels(2, 4, 7, 16, 2, 3),
            {
                let mut c = ConvConfig::with_channels(2, 2, 6, 3, 3, 1);
                c.pad = 2;
                c
            },
        ]
    }

    #[test]
    fn forward_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 20);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 21);
            let fast = UnrollConv.forward(&cfg, &x, &w);
            let slow = reference::forward_ref(&cfg, &x, &w);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-3,
                "forward mismatch at {cfg}"
            );
        }
    }

    #[test]
    fn backward_data_matches_reference() {
        for cfg in configs() {
            let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 22);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 23);
            let fast = UnrollConv.backward_data(&cfg, &g, &w);
            let slow = reference::backward_data_ref(&cfg, &g, &w);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-3,
                "backward_data mismatch at {cfg}"
            );
        }
    }

    #[test]
    fn backward_filters_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 24);
            let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 25);
            let fast = UnrollConv.backward_filters(&cfg, &x, &g);
            let slow = reference::backward_filters_ref(&cfg, &x, &g);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-2,
                "backward_filters mismatch at {cfg}"
            );
        }
    }

    #[test]
    fn agrees_with_direct_strategy() {
        let cfg = ConvConfig::with_channels(2, 3, 10, 6, 4, 2);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 26);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 27);
        let a = UnrollConv.forward(&cfg, &x, &w);
        let b = crate::direct::DirectConv.forward(&cfg, &x, &w);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-3);
    }

    #[test]
    fn strategy_tag() {
        assert_eq!(UnrollConv.strategy(), Strategy::Unrolling);
    }
}
