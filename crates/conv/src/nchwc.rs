//! Direct convolution over the channel-blocked NCHWc layout, with
//! optional fused ReLU and max-pool stages.
//!
//! The planar strategies pay for layout twice: im2col materializes a
//! `ck² × o²` column matrix per image, and every layer boundary writes
//! a full feature map that the next layer immediately re-reads. Packing
//! activations as `[n][⌈c/b⌉][h][w][b]` (see `gcnn_tensor::nchwc`)
//! removes both costs for the forward pass:
//!
//! * the inner channel block vectorizes directly — one broadcast lane
//!   against a `b×b` filter panel per tap ([`gcnn_tensor::simd::conv_nchwc_tap`]),
//!   so no column matrix exists at any stride;
//! * conv+ReLU(+pool) chains run tile-at-a-time: one `(image, filter
//!   block)` output plane lives in arena scratch, gets its activation
//!   applied while cache-hot, and is pooled before the next plane is
//!   touched — the full pre-pool feature map is never materialized
//!   (the memory-efficiency move of arXiv:1610.03618).
//!
//! Spatial padding is baked into the packed input at pack time, so the
//! hot loops are branch-free. This module is forward/inference only;
//! training keeps the planar layouts and their backward kernels.

use crate::config::ConvConfig;
use crate::strategy::Unsupported;
use gcnn_tensor::{nchwc, simd, workspace, Tensor4};
use rayon::prelude::*;

/// Whether the packed direct path can run `cfg` (forward only).
pub fn supports(cfg: &ConvConfig) -> Result<(), Unsupported> {
    if !cfg.is_valid() {
        return Err(Unsupported::InvalidGeometry {
            reason: "kernel larger than padded input".into(),
        });
    }
    Ok(())
}

/// Derived loop bounds of one packed convolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PackedGeom {
    /// Inner channel-block width.
    pub block: usize,
    /// Input channel blocks, `⌈c/b⌉`.
    pub cblocks: usize,
    /// Output channel blocks, `⌈f/b⌉`.
    pub fblocks: usize,
    /// Output spatial edge.
    pub o: usize,
    /// Kernel edge.
    pub k: usize,
    /// Convolution stride.
    pub stride: usize,
    /// Padded input height (`input + 2·pad`).
    pub ihp: usize,
    /// Padded input width (`input + 2·pad`).
    pub iwp: usize,
}

impl PackedGeom {
    /// Loop bounds for `cfg` at channel block `block`.
    pub fn of(cfg: &ConvConfig, block: usize) -> Self {
        PackedGeom {
            block,
            cblocks: cfg.channels.div_ceil(block),
            fblocks: cfg.filters.div_ceil(block),
            o: cfg.output(),
            k: cfg.kernel,
            stride: cfg.stride,
            ihp: cfg.input + 2 * cfg.pad,
            iwp: cfg.input + 2 * cfg.pad,
        }
    }

    /// Elements of one packed input image.
    pub fn image_in_len(&self) -> usize {
        self.cblocks * self.ihp * self.iwp * self.block
    }

    /// Elements of one packed output image.
    pub fn image_out_len(&self) -> usize {
        self.fblocks * self.o * self.o * self.block
    }

    /// Elements of one packed output plane (one filter block).
    pub fn plane_len(&self) -> usize {
        self.o * self.o * self.block
    }
}

/// Packed-input buffer length for `cfg` (spatial padding included).
pub fn packed_input_len(cfg: &ConvConfig, block: usize) -> usize {
    nchwc::packed_len(cfg.input_shape(), block, cfg.pad)
}

/// Packed-output buffer length for `cfg`.
pub fn packed_output_len(cfg: &ConvConfig, block: usize) -> usize {
    nchwc::packed_len(cfg.output_shape(), block, 0)
}

/// Packed filter-bank length for `cfg`.
pub fn packed_filter_len(cfg: &ConvConfig, block: usize) -> usize {
    nchwc::packed_filter_len(cfg.filter_shape(), block)
}

/// Pooled-output spatial edge for a conv output pooled by
/// `window`/`stride` (the `PoolLayer` formula, no pool padding).
pub fn pooled_output(cfg: &ConvConfig, window: usize, stride: usize) -> usize {
    (cfg.output() - window) / stride + 1
}

/// Pack a planar input for `cfg` (bakes `cfg.pad` zero borders in).
pub fn pack_input(cfg: &ConvConfig, input: &Tensor4, block: usize, dst: &mut [f32]) {
    assert_eq!(input.shape(), cfg.input_shape(), "pack_input: shape");
    nchwc::pack_nchwc_into(input.as_slice(), input.shape(), block, cfg.pad, dst);
}

/// Pack a planar `(f, c, k, k)` filter bank for `cfg`.
pub fn pack_filters(cfg: &ConvConfig, filters: &Tensor4, block: usize, dst: &mut [f32]) {
    assert_eq!(filters.shape(), cfg.filter_shape(), "pack_filters: shape");
    nchwc::pack_filters_into(filters.as_slice(), filters.shape(), block, dst);
}

/// Accumulate one `(image, filter block)` output plane.
///
/// `out_plane` (`o²·b`, caller-zeroed) accumulates over input channel
/// blocks and kernel taps; `packed_img` is one image of the padded
/// packed input; `packed_w` the whole packed filter bank. The padded
/// borders and zeroed remainder lanes make every tap unconditional —
/// this loop nest has no branches beyond its trip counts.
pub fn forward_tile(
    g: &PackedGeom,
    packed_img: &[f32],
    packed_w: &[f32],
    fb: usize,
    out_plane: &mut [f32],
) {
    let b = g.block;
    let bb = b * b;
    let row = g.o * b;
    for cb in 0..g.cblocks {
        let wbase = (fb * g.cblocks + cb) * g.k * g.k * bb;
        let ibase = cb * g.ihp * g.iwp * b;
        for oy in 0..g.o {
            let orow = &mut out_plane[oy * row..(oy + 1) * row];
            for ky in 0..g.k {
                let iy = oy * g.stride + ky;
                let irow0 = ibase + iy * g.iwp * b;
                for kx in 0..g.k {
                    let tap = &packed_w[wbase + (ky * g.k + kx) * bb..][..bb];
                    let irow = &packed_img[irow0 + kx * b..];
                    simd::conv_nchwc_tap(orow, irow, tap, g.o, g.stride, b);
                }
            }
        }
    }
}

/// Packed direct convolution forward, optionally fusing ReLU into each
/// output plane while it is cache-hot.
///
/// `packed_in`/`packed_w` come from [`pack_input`]/[`pack_filters`];
/// `out` receives the packed `[n][⌈f/b⌉][o][o][b]` result. Parallel
/// over images, like the planar strategies.
pub fn fused_conv_relu(
    cfg: &ConvConfig,
    block: usize,
    packed_in: &[f32],
    packed_w: &[f32],
    out: &mut [f32],
    relu: bool,
) {
    let _span = gcnn_trace::span("conv.nchwc.forward");
    let g = PackedGeom::of(cfg, block);
    assert_eq!(
        packed_in.len(),
        cfg.batch * g.image_in_len(),
        "fused_conv_relu: packed_in"
    );
    assert_eq!(
        packed_w.len(),
        packed_filter_len(cfg, block),
        "fused_conv_relu: packed_w"
    );
    assert_eq!(
        out.len(),
        cfg.batch * g.image_out_len(),
        "fused_conv_relu: out"
    );
    out.par_chunks_mut(g.image_out_len())
        .enumerate()
        .for_each(|(n, oimg)| {
            let pimg = &packed_in[n * g.image_in_len()..(n + 1) * g.image_in_len()];
            for (fb, plane) in oimg.chunks_mut(g.plane_len()).enumerate() {
                plane.fill(0.0);
                forward_tile(&g, pimg, packed_w, fb, plane);
                if relu {
                    simd::relu_inplace(plane);
                }
            }
        });
}

/// Packed conv+ReLU+max-pool, tile-at-a-time: each `(image, filter
/// block)` conv plane lives only in arena scratch — ReLU is applied
/// in-tile and the pool fold writes the final pooled plane, so the
/// intermediate feature map is never materialized.
///
/// `out` receives the packed `[n][⌈f/b⌉][po][po][b]` pooled result
/// where `po = `[`pooled_output`]`(cfg, window, pool_stride)`.
pub fn fused_conv_relu_pool(
    cfg: &ConvConfig,
    block: usize,
    window: usize,
    pool_stride: usize,
    packed_in: &[f32],
    packed_w: &[f32],
    out: &mut [f32],
) {
    let _span = gcnn_trace::span("conv.nchwc.forward_pool");
    let g = PackedGeom::of(cfg, block);
    let po = pooled_output(cfg, window, pool_stride);
    let pooled_plane = po * po * block;
    assert_eq!(
        packed_in.len(),
        cfg.batch * g.image_in_len(),
        "fused_conv_relu_pool: packed_in"
    );
    assert_eq!(
        packed_w.len(),
        packed_filter_len(cfg, block),
        "fused_conv_relu_pool: packed_w"
    );
    assert_eq!(
        out.len(),
        cfg.batch * g.fblocks * pooled_plane,
        "fused_conv_relu_pool: out"
    );
    out.par_chunks_mut(g.fblocks * pooled_plane)
        .enumerate()
        .for_each(|(n, oimg)| {
            let pimg = &packed_in[n * g.image_in_len()..(n + 1) * g.image_in_len()];
            // One conv plane of scratch per worker, recycled from the
            // thread-local arena: steady state allocates nothing, and
            // the full conv output (batch × f × o²) never exists.
            let mut tile = workspace::take_f32(g.plane_len());
            for (fb, pooled) in oimg.chunks_mut(pooled_plane).enumerate() {
                let t = tile.as_mut_slice();
                t.fill(0.0);
                forward_tile(&g, pimg, packed_w, fb, t);
                simd::relu_inplace(t);
                max_pool_tile(t, g.o, block, window, pool_stride, po, pooled);
            }
        });
}

/// Fold one relu'd conv plane into its pooled plane: `pooled[py, px] =
/// max` over the `window²` tile positions, lane-wise across the block.
pub fn max_pool_tile(
    tile: &[f32],
    o: usize,
    block: usize,
    window: usize,
    stride: usize,
    po: usize,
    pooled: &mut [f32],
) {
    debug_assert!(tile.len() >= o * o * block);
    debug_assert!(pooled.len() >= po * po * block);
    for py in 0..po {
        for px in 0..po {
            let dst = &mut pooled[(py * po + px) * block..(py * po + px + 1) * block];
            let iy0 = py * stride;
            let ix0 = px * stride;
            dst.copy_from_slice(&tile[(iy0 * o + ix0) * block..][..block]);
            for wy in 0..window {
                for wx in 0..window {
                    if wy == 0 && wx == 0 {
                        continue;
                    }
                    let src = &tile[((iy0 + wy) * o + ix0 + wx) * block..][..block];
                    simd::max_assign(dst, src);
                }
            }
        }
    }
}

/// Planar-in, planar-out convenience wrapper: pack, run the fused
/// packed path, unpack. All intermediates come from the arena, so a
/// warm caller allocates only the output tensor. Used by equivalence
/// tests and the autotune substrate's measurement setup.
pub fn forward_planar(cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4, relu: bool) -> Tensor4 {
    let block = simd::preferred_block();
    let mut pin = workspace::take_f32(packed_input_len(cfg, block));
    let mut pw = workspace::take_f32(packed_filter_len(cfg, block));
    let mut pout = workspace::take_f32(packed_output_len(cfg, block));
    pack_input(cfg, input, block, pin.as_mut_slice());
    pack_filters(cfg, filters, block, pw.as_mut_slice());
    fused_conv_relu(
        cfg,
        block,
        pin.as_slice(),
        pw.as_slice(),
        pout.as_mut_slice(),
        relu,
    );
    let mut out = Tensor4::zeros(cfg.output_shape());
    nchwc::unpack_nchwc_from(pout.as_slice(), out.shape(), block, out.as_mut_slice());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectConv;
    use crate::layers::{PoolKind, PoolLayer, ReluLayer};
    use crate::strategy::ConvAlgorithm;
    use gcnn_tensor::init::uniform_tensor;

    fn tolerance_check(a: &Tensor4, b: &Tensor4, tol: f32, what: &str) {
        assert_eq!(a.shape(), b.shape(), "{what}: shape");
        let d = a.max_abs_diff(b).unwrap();
        assert!(d <= tol, "{what}: max abs diff {d} > {tol}");
    }

    /// The packed path must match the planar direct algorithm on
    /// geometries covering remainder channels, stride > 1, and padding.
    /// Accumulation orders differ ((cb, ky, kx, ci) vs (c, ky, kx)), so
    /// the comparison budgets a few ulps, not bit equality.
    #[test]
    fn packed_forward_matches_direct() {
        let cases = [
            ConvConfig::with_channels(2, 3, 8, 4, 3, 1),
            ConvConfig::with_channels(1, 1, 5, 1, 5, 1),
            ConvConfig::with_channels(3, 2, 9, 5, 3, 2),
            ConvConfig::with_channels(2, 8, 7, 16, 3, 1),
            ConvConfig::with_channels(2, 10, 6, 9, 3, 3),
        ];
        for (i, mut cfg) in cases.into_iter().enumerate() {
            if i == 3 {
                cfg.pad = 1;
            }
            supports(&cfg).expect("valid geometry");
            let input = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 41 + i as u64);
            let filters = uniform_tensor(cfg.filter_shape(), -0.5, 0.5, 51 + i as u64);
            let want = DirectConv::new().forward(&cfg, &input, &filters);
            let got = forward_planar(&cfg, &input, &filters, false);
            tolerance_check(&got, &want, 1e-4, "packed vs direct");
        }
    }

    #[test]
    fn fused_relu_matches_separate_relu() {
        let mut cfg = ConvConfig::with_channels(2, 6, 8, 10, 3, 1);
        cfg.pad = 1;
        let input = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 7);
        let filters = uniform_tensor(cfg.filter_shape(), -0.5, 0.5, 8);
        let unfused = ReluLayer.forward(&forward_planar(&cfg, &input, &filters, false));
        let fused = forward_planar(&cfg, &input, &filters, true);
        // Same conv numerics underneath: only the activation placement
        // differs, so this comparison is exact.
        assert_eq!(fused.as_slice(), unfused.as_slice());
    }

    #[test]
    fn fused_pool_matches_separate_pool() {
        let cfg = ConvConfig::with_channels(2, 6, 9, 10, 4, 1);
        let (window, stride) = (2, 2);
        let block = simd::preferred_block();
        let input = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 9);
        let filters = uniform_tensor(cfg.filter_shape(), -0.5, 0.5, 10);

        let conv = forward_planar(&cfg, &input, &filters, true);
        let want = PoolLayer::new(PoolKind::Max, window, stride)
            .forward(&conv)
            .output;

        let mut pin = vec![0.0; packed_input_len(&cfg, block)];
        let mut pw = vec![0.0; packed_filter_len(&cfg, block)];
        pack_input(&cfg, &input, block, &mut pin);
        pack_filters(&cfg, &filters, block, &mut pw);
        let po = pooled_output(&cfg, window, stride);
        let pooled_shape = gcnn_tensor::Shape4::new(cfg.batch, cfg.filters, po, po);
        let mut pout = vec![0.0; nchwc::packed_len(pooled_shape, block, 0)];
        fused_conv_relu_pool(&cfg, block, window, stride, &pin, &pw, &mut pout);
        let mut got = Tensor4::zeros(pooled_shape);
        nchwc::unpack_nchwc_from(&pout, pooled_shape, block, got.as_mut_slice());
        tolerance_check(&got, &want, 1e-5, "fused pool vs PoolLayer");
    }

    /// Warm fused calls must check out every buffer from the arena:
    /// zero fresh allocations in steady state.
    #[test]
    fn fused_path_is_zero_alloc_when_warm() {
        let mut cfg = ConvConfig::with_channels(2, 8, 8, 16, 3, 1);
        cfg.pad = 1;
        let input = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 3);
        let filters = uniform_tensor(cfg.filter_shape(), -0.5, 0.5, 4);
        // Warm both fused drivers (and rayon's worker-local pools).
        for _ in 0..2 {
            let _ = forward_planar(&cfg, &input, &filters, true);
        }
        let block = simd::preferred_block();
        let mut pin = vec![0.0; packed_input_len(&cfg, block)];
        let mut pw = vec![0.0; packed_filter_len(&cfg, block)];
        let po = pooled_output(&cfg, 2, 2);
        let mut pooled = vec![0.0; cfg.batch * cfg.filters.div_ceil(block) * block * po * po];
        pack_input(&cfg, &input, block, &mut pin);
        pack_filters(&cfg, &filters, block, &mut pw);
        for _ in 0..2 {
            fused_conv_relu_pool(&cfg, block, 2, 2, &pin, &pw, &mut pooled);
        }

        let (_, fresh) = workspace::alloc_scope(|| {
            let mut pout = workspace::take_f32(packed_output_len(&cfg, block));
            fused_conv_relu(&cfg, block, &pin, &pw, pout.as_mut_slice(), true);
            fused_conv_relu_pool(&cfg, block, 2, 2, &pin, &pw, &mut pooled);
        });
        assert_eq!(fresh, 0, "fused hot path must not allocate when warm");
    }
}
