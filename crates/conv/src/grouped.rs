//! Grouped convolution — AlexNet's two-tower layers.
//!
//! The original AlexNet (the paper's §I flagship model) splits conv2,
//! conv4 and conv5 into two channel groups, one per GPU of the 2012
//! training rig. A grouped convolution with `g` groups partitions the
//! input channels and the filters into `g` equal blocks and convolves
//! block-diagonally: filters of group `j` see only input channels of
//! group `j`.
//!
//! [`GroupedConv`] implements this as a wrapper over *any*
//! [`ConvAlgorithm`], so every strategy (direct, unrolling, FFT,
//! Winograd) gains group support without touching its kernels — exactly
//! how the frameworks of the era implemented it (a loop of per-group
//! GEMMs).

use crate::config::ConvConfig;
use crate::strategy::{ConvAlgorithm, Strategy, Unsupported};
use gcnn_tensor::{Shape4, Tensor4};

/// A grouped convolution over an inner algorithm.
///
/// Filter-bank convention: the `filters` tensor passed to the
/// [`ConvAlgorithm`] methods has shape `(f, c/groups, k, k)` — each
/// filter holds only its own group's input channels, exactly as
/// cuda-convnet and Caffe store grouped banks.
pub struct GroupedConv {
    inner: Box<dyn ConvAlgorithm>,
    groups: usize,
}

impl GroupedConv {
    /// Wrap `inner` with `groups` channel groups.
    ///
    /// # Panics
    /// Panics if `groups == 0`.
    pub fn new(inner: Box<dyn ConvAlgorithm>, groups: usize) -> Self {
        assert!(groups > 0, "GroupedConv: zero groups");
        GroupedConv { inner, groups }
    }

    /// Number of groups.
    pub fn groups(&self) -> usize {
        self.groups
    }

    /// The per-group configuration (channels and filters divided by the
    /// group count).
    fn group_config(&self, cfg: &ConvConfig) -> ConvConfig {
        let mut g = *cfg;
        g.channels = cfg.channels / self.groups;
        g.filters = cfg.filters / self.groups;
        g
    }

    /// Copy channels `[c0, c0+len)` of every image into a fresh tensor.
    fn slice_channels(t: &Tensor4, c0: usize, len: usize) -> Tensor4 {
        let s = t.shape();
        let mut out = Tensor4::zeros(Shape4::new(s.n, len, s.h, s.w));
        for n in 0..s.n {
            for c in 0..len {
                out.plane_mut(n, c).copy_from_slice(t.plane(n, c0 + c));
            }
        }
        out
    }

    /// Write `src` into channels `[c0, c0+src.c)` of `dst`.
    fn write_channels(dst: &mut Tensor4, src: &Tensor4, c0: usize) {
        let s = src.shape();
        for n in 0..s.n {
            for c in 0..s.c {
                dst.plane_mut(n, c0 + c).copy_from_slice(src.plane(n, c));
            }
        }
    }
}

impl ConvAlgorithm for GroupedConv {
    fn strategy(&self) -> Strategy {
        self.inner.strategy()
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if cfg.channels % self.groups != 0 {
            return Err(Unsupported::InvalidGeometry {
                reason: format!(
                    "channels {} not divisible by {} groups",
                    cfg.channels, self.groups
                ),
            });
        }
        if cfg.filters % self.groups != 0 {
            return Err(Unsupported::InvalidGeometry {
                reason: format!(
                    "filters {} not divisible by {} groups",
                    cfg.filters, self.groups
                ),
            });
        }
        self.inner.supports(&self.group_config(cfg))
    }

    fn forward(&self, cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.grouped.forward");
        self.supports(cfg)
            .expect("GroupedConv::forward: unsupported config");
        let gcfg = self.group_config(cfg);
        let (cg, fg) = (gcfg.channels, gcfg.filters);

        let mut out = Tensor4::zeros(cfg.output_shape());
        for g in 0..self.groups {
            let x_g = Self::slice_channels(input, g * cg, cg);
            // The filter bank is `(f, c/g, k, k)`: carve this group's
            // block along the filter axis.
            let mut wslice = Tensor4::zeros(Shape4::new(fg, cg, cfg.kernel, cfg.kernel));
            for f in 0..fg {
                for c in 0..cg {
                    wslice
                        .plane_mut(f, c)
                        .copy_from_slice(filters.plane(g * fg + f, c));
                }
            }
            let y_g = self.inner.forward(&gcfg, &x_g, &wslice);
            Self::write_channels(&mut out, &y_g, g * fg);
        }
        out
    }

    fn backward_data(&self, cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.grouped.backward_data");
        self.supports(cfg)
            .expect("GroupedConv::backward_data: unsupported config");
        let gcfg = self.group_config(cfg);
        let (cg, fg) = (gcfg.channels, gcfg.filters);

        let mut grad_in = Tensor4::zeros(cfg.input_shape());
        for g in 0..self.groups {
            let g_g = Self::slice_channels(grad_out, g * fg, fg);
            let mut wslice = Tensor4::zeros(Shape4::new(fg, cg, cfg.kernel, cfg.kernel));
            for f in 0..fg {
                for c in 0..cg {
                    wslice
                        .plane_mut(f, c)
                        .copy_from_slice(filters.plane(g * fg + f, c));
                }
            }
            let gi_g = self.inner.backward_data(&gcfg, &g_g, &wslice);
            Self::write_channels(&mut grad_in, &gi_g, g * cg);
        }
        grad_in
    }

    fn backward_filters(&self, cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.grouped.backward_filters");
        self.supports(cfg)
            .expect("GroupedConv::backward_filters: unsupported config");
        let gcfg = self.group_config(cfg);
        let (cg, fg) = (gcfg.channels, gcfg.filters);

        // Gradient matches the grouped bank's (f, c/g, k, k) shape.
        let mut grad_w = Tensor4::zeros(Shape4::new(cfg.filters, cg, cfg.kernel, cfg.kernel));
        for g in 0..self.groups {
            let x_g = Self::slice_channels(input, g * cg, cg);
            let g_g = Self::slice_channels(grad_out, g * fg, fg);
            let gw_g = self.inner.backward_filters(&gcfg, &x_g, &g_g);
            for f in 0..fg {
                for c in 0..cg {
                    grad_w
                        .plane_mut(g * fg + f, c)
                        .copy_from_slice(gw_g.plane(f, c));
                }
            }
        }
        grad_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use crate::unroll::UnrollConv;
    use gcnn_tensor::init::uniform_tensor;

    fn grouped(groups: usize) -> GroupedConv {
        GroupedConv::new(Box::new(UnrollConv::new()), groups)
    }

    /// A grouped convolution equals a full convolution with a
    /// block-diagonal filter bank (zeros outside each group's channels).
    fn block_diagonal_equivalent(cfg: &ConvConfig, filters: &Tensor4, groups: usize) -> Tensor4 {
        let (cg, fg) = (cfg.channels / groups, cfg.filters / groups);
        Tensor4::from_fn(cfg.filter_shape(), |f, c, h, w| {
            let g = f / fg;
            if c >= g * cg && c < (g + 1) * cg {
                filters.get(f, c - g * cg, h, w)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn groups_equal_block_diagonal_full_conv() {
        for groups in [1usize, 2, 4] {
            let cfg = ConvConfig::with_channels(2, 8, 10, 8, 3, 1);
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 90);
            // Grouped weights: (f, c/g, k, k).
            let gshape = Shape4::new(cfg.filters, cfg.channels / groups, cfg.kernel, cfg.kernel);
            let w = gcnn_tensor::init::uniform_tensor(gshape, -1.0, 1.0, 91);

            let got = grouped(groups).forward(&cfg, &x, &w);

            let w_full = block_diagonal_equivalent(&cfg, &w, groups);
            let want = reference::forward_ref(&cfg, &x, &w_full);
            assert!(got.rel_l2_dist(&want).unwrap() < 1e-4, "groups {groups}");
        }
    }

    #[test]
    fn backward_passes_match_block_diagonal() {
        let groups = 2;
        let cfg = ConvConfig::with_channels(2, 4, 8, 6, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 92);
        let gshape = Shape4::new(cfg.filters, cfg.channels / groups, cfg.kernel, cfg.kernel);
        let w = gcnn_tensor::init::uniform_tensor(gshape, -1.0, 1.0, 93);
        let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 94);

        let w_full = block_diagonal_equivalent(&cfg, &w, groups);

        let gi = grouped(groups).backward_data(&cfg, &g, &w);
        let gi_ref = reference::backward_data_ref(&cfg, &g, &w_full);
        assert!(gi.rel_l2_dist(&gi_ref).unwrap() < 1e-4);

        let gw = grouped(groups).backward_filters(&cfg, &x, &g);
        let gw_full = reference::backward_filters_ref(&cfg, &x, &g);
        // Compare each group block of the full gradient.
        let (cg, fg) = (cfg.channels / groups, cfg.filters / groups);
        for grp in 0..groups {
            for f in 0..fg {
                for c in 0..cg {
                    for h in 0..cfg.kernel {
                        for wx in 0..cfg.kernel {
                            let a = gw.get(grp * fg + f, c, h, wx);
                            let b = gw_full.get(grp * fg + f, grp * cg + c, h, wx);
                            assert!((a - b).abs() < 1e-2, "g{grp} f{f} c{c}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn rejects_indivisible_groups() {
        let cfg = ConvConfig::with_channels(1, 6, 8, 6, 3, 1);
        assert!(grouped(4).supports(&cfg).is_err());
        assert!(grouped(3).supports(&cfg).is_ok());
        assert!(grouped(2).supports(&cfg).is_ok());
    }

    #[test]
    fn one_group_is_identity_wrapper() {
        let cfg = ConvConfig::with_channels(2, 3, 8, 4, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 95);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 96);
        let a = grouped(1).forward(&cfg, &x, &w);
        let b = UnrollConv::new().forward(&cfg, &x, &w);
        assert!(a.max_abs_diff(&b).unwrap() < 1e-5);
    }

    #[test]
    fn works_over_fft_strategy() {
        let groups = 2;
        let cfg = ConvConfig::with_channels(2, 4, 8, 4, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 97);
        let gshape = Shape4::new(cfg.filters, cfg.channels / groups, cfg.kernel, cfg.kernel);
        let w = gcnn_tensor::init::uniform_tensor(gshape, -1.0, 1.0, 98);

        let via_fft = GroupedConv::new(Box::new(crate::fft_conv::FftConv::new()), groups)
            .forward(&cfg, &x, &w);
        let via_unroll = grouped(groups).forward(&cfg, &x, &w);
        assert!(via_fft.rel_l2_dist(&via_unroll).unwrap() < 1e-4);
    }
}
