//! Convolution-layer configuration — the paper's 5-tuple `(b, i, f, k, s)`.

use serde::{Deserialize, Serialize};
use std::fmt;

/// One convolutional-layer configuration.
///
/// The paper organizes its parameter space as a 5-tuple `(b, i, f, k, s)`
/// (§IV-B): mini-batch, square input size, filter count, square kernel
/// size, stride. The tuple omits the input-channel count; following
/// convnet-benchmarks (from which the paper takes its Table I), we carry
/// channels explicitly and derive them with [`ConvConfig::from_tuple`]
/// when only the 5-tuple is given.
///
/// ```
/// use gcnn_conv::ConvConfig;
///
/// let cfg = ConvConfig::paper_base(); // (64, 128, 64, 11, 1)
/// assert_eq!(cfg.output(), 118);
/// assert_eq!(cfg.filter_shape().len(), 64 * 3 * 11 * 11);
/// assert!(cfg.forward_flops() > 40_000_000_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvConfig {
    /// Mini-batch size `b`.
    pub batch: usize,
    /// Input channels `c` (not part of the paper's tuple; see
    /// [`ConvConfig::from_tuple`]).
    pub channels: usize,
    /// Square input spatial size `i`.
    pub input: usize,
    /// Number of filters `f` (= output channels).
    pub filters: usize,
    /// Square kernel size `k`.
    pub kernel: usize,
    /// Stride `s`.
    pub stride: usize,
    /// Zero padding on each side (0 throughout the paper's sweeps).
    pub pad: usize,
}

impl ConvConfig {
    /// Construct from the paper's 5-tuple, deriving the channel count
    /// with the convnet-benchmarks convention: 3 channels for
    /// image-sized inputs (i ≥ 64, i.e. first-layer shapes), otherwise a
    /// mid-network shape with channels matching typical real-life models
    /// (64 for i ≥ 32, 128 for i ≥ 16, 384 below).
    pub const fn from_tuple(b: usize, i: usize, f: usize, k: usize, s: usize) -> Self {
        let channels = if i >= 64 {
            3
        } else if i >= 32 {
            64
        } else if i >= 16 {
            128
        } else {
            384
        };
        ConvConfig {
            batch: b,
            channels,
            input: i,
            filters: f,
            kernel: k,
            stride: s,
            pad: 0,
        }
    }

    /// Construct with an explicit channel count.
    pub const fn with_channels(b: usize, c: usize, i: usize, f: usize, k: usize, s: usize) -> Self {
        ConvConfig {
            batch: b,
            channels: c,
            input: i,
            filters: f,
            kernel: k,
            stride: s,
            pad: 0,
        }
    }

    /// The paper's base configuration `(64, 128, 64, 11, 1)` (§IV-B).
    pub const fn paper_base() -> Self {
        Self::from_tuple(64, 128, 64, 11, 1)
    }

    /// Square output spatial size `(i + 2·pad − k)/s + 1`.
    pub const fn output(&self) -> usize {
        (self.input + 2 * self.pad - self.kernel) / self.stride + 1
    }

    /// Whether the geometry is realizable (kernel fits, stride > 0).
    pub const fn is_valid(&self) -> bool {
        self.stride > 0
            && self.kernel > 0
            && self.batch > 0
            && self.channels > 0
            && self.filters > 0
            && self.input + 2 * self.pad >= self.kernel
    }

    /// Input tensor shape `(b, c, i, i)`.
    pub const fn input_shape(&self) -> gcnn_tensor::Shape4 {
        gcnn_tensor::Shape4::new(self.batch, self.channels, self.input, self.input)
    }

    /// Filter-bank shape `(f, c, k, k)`.
    pub const fn filter_shape(&self) -> gcnn_tensor::Shape4 {
        gcnn_tensor::Shape4::new(self.filters, self.channels, self.kernel, self.kernel)
    }

    /// Output tensor shape `(b, f, o, o)`.
    pub const fn output_shape(&self) -> gcnn_tensor::Shape4 {
        gcnn_tensor::Shape4::new(self.batch, self.filters, self.output(), self.output())
    }

    /// Multiply–add FLOPs of the forward pass under direct/unrolled
    /// convolution: `2·b·f·c·o²·k²`.
    pub const fn forward_flops(&self) -> u64 {
        let o = self.output() as u64;
        2 * (self.batch as u64)
            * (self.filters as u64)
            * (self.channels as u64)
            * o
            * o
            * (self.kernel as u64)
            * (self.kernel as u64)
    }

    /// FLOPs of one full training iteration (forward + backward-data +
    /// backward-weights ≈ 3× forward; the standard estimate).
    pub const fn training_flops(&self) -> u64 {
        3 * self.forward_flops()
    }

    /// im2col column-matrix shape for one image: `(c·k², o²)`.
    pub const fn col_shape(&self) -> gcnn_tensor::Shape2 {
        gcnn_tensor::Shape2::new(
            self.channels * self.kernel * self.kernel,
            self.output() * self.output(),
        )
    }

    /// The im2col geometry for this configuration.
    pub const fn geometry(&self) -> gcnn_tensor::im2col::ConvGeometry {
        gcnn_tensor::im2col::ConvGeometry {
            in_h: self.input,
            in_w: self.input,
            channels: self.channels,
            kernel: self.kernel,
            stride: self.stride,
            pad: self.pad,
        }
    }

    /// FFT transform size for this configuration: the next power of two
    /// that holds the input (§4.4 of DESIGN.md — the source of the
    /// paper's Fig. 5 memory fluctuations).
    pub const fn fft_size(&self) -> usize {
        self.input.next_power_of_two()
    }
}

impl fmt::Display for ConvConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "(b={}, c={}, i={}, f={}, k={}, s={})",
            self.batch, self.channels, self.input, self.filters, self.kernel, self.stride
        )
    }
}

/// The five benchmark configurations of the paper's Table I, with the
/// channel counts of the corresponding convnet-benchmarks layers.
///
/// | Layer | `(b, i, f, k, s)`       | channels |
/// |-------|--------------------------|----------|
/// | Conv1 | (128, 128,  96, 11, 1)   | 3        |
/// | Conv2 | (128, 128,  96,  3, 1)   | 3        |
/// | Conv3 | (128,  32, 128,  9, 1)   | 64       |
/// | Conv4 | (128,  16, 128,  7, 1)   | 128      |
/// | Conv5 | (128,  13, 384,  3, 1)   | 384      |
pub const fn table1_configs() -> [ConvConfig; 5] {
    [
        ConvConfig::with_channels(128, 3, 128, 96, 11, 1),
        ConvConfig::with_channels(128, 3, 128, 96, 3, 1),
        ConvConfig::with_channels(128, 64, 32, 128, 9, 1),
        ConvConfig::with_channels(128, 128, 16, 128, 7, 1),
        ConvConfig::with_channels(128, 384, 13, 384, 3, 1),
    ]
}

/// Names of the Table I layers, aligned with [`table1_configs`].
pub const TABLE1_NAMES: [&str; 5] = ["Conv1", "Conv2", "Conv3", "Conv4", "Conv5"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_base_tuple() {
        let c = ConvConfig::paper_base();
        assert_eq!(c.batch, 64);
        assert_eq!(c.input, 128);
        assert_eq!(c.filters, 64);
        assert_eq!(c.kernel, 11);
        assert_eq!(c.stride, 1);
        assert_eq!(c.channels, 3);
        assert_eq!(c.output(), 118);
    }

    #[test]
    fn channel_rule_tracks_depth() {
        assert_eq!(ConvConfig::from_tuple(64, 128, 64, 11, 1).channels, 3);
        assert_eq!(ConvConfig::from_tuple(64, 32, 64, 9, 1).channels, 64);
        assert_eq!(ConvConfig::from_tuple(64, 16, 64, 7, 1).channels, 128);
        assert_eq!(ConvConfig::from_tuple(64, 13, 64, 3, 1).channels, 384);
    }

    #[test]
    fn output_size_with_stride_and_pad() {
        let mut c = ConvConfig::with_channels(1, 1, 32, 1, 3, 2);
        assert_eq!(c.output(), 15);
        c.pad = 1;
        assert_eq!(c.output(), 16);
    }

    #[test]
    fn table1_matches_paper() {
        let configs = table1_configs();
        assert_eq!(configs[0].kernel, 11);
        assert_eq!(configs[1].kernel, 3);
        assert_eq!(configs[2].input, 32);
        assert_eq!(configs[3].filters, 128);
        assert_eq!(configs[4].channels, 384);
        for c in &configs {
            assert_eq!(c.batch, 128);
            assert_eq!(c.stride, 1);
            assert!(c.is_valid());
        }
    }

    #[test]
    fn validity() {
        assert!(ConvConfig::paper_base().is_valid());
        assert!(!ConvConfig::with_channels(1, 1, 4, 1, 5, 1).is_valid());
        assert!(!ConvConfig::with_channels(1, 1, 8, 1, 3, 0).is_valid());
    }

    #[test]
    fn flops_scale_quadratically_in_kernel() {
        let k3 = ConvConfig::with_channels(1, 1, 64, 1, 3, 1).forward_flops();
        let k6 = ConvConfig::with_channels(1, 1, 64, 1, 6, 1).forward_flops();
        // Output shrinks slightly, but the k² factor dominates.
        assert!(k6 > 3 * k3);
    }

    #[test]
    fn fft_size_is_pow2_covering_input() {
        assert_eq!(ConvConfig::from_tuple(1, 128, 1, 3, 1).fft_size(), 128);
        assert_eq!(ConvConfig::from_tuple(1, 130, 1, 3, 1).fft_size(), 256);
        assert_eq!(ConvConfig::with_channels(1, 1, 13, 1, 3, 1).fft_size(), 16);
    }

    #[test]
    fn shapes_consistent() {
        let c = ConvConfig::with_channels(4, 3, 16, 8, 5, 1);
        assert_eq!(c.input_shape().len(), 4 * 3 * 16 * 16);
        assert_eq!(c.filter_shape().len(), 8 * 3 * 25);
        assert_eq!(c.output_shape().len(), 4 * 8 * 12 * 12);
        assert_eq!(c.col_shape().rows, 75);
        assert_eq!(c.col_shape().cols, 144);
    }
}
