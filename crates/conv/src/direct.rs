//! Direct convolution — sliding-window dot products.
//!
//! Paper §II-B: *"During direct convolution, a small window slides
//! within an input feature map and a dot production between the filter
//! bank and local patch of the input feature map is computed."* This is
//! the strategy of cuda-convnet2 and Theano-legacy. On the CPU we
//! parallelize across images of the mini-batch; per-image the loops are
//! ordered so the innermost runs contiguously over a filter row.

use crate::config::ConvConfig;
use crate::reference;
use crate::strategy::{ConvAlgorithm, Strategy};
use gcnn_tensor::Tensor4;
use rayon::prelude::*;

/// The direct convolution algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct DirectConv;

impl DirectConv {
    /// Create a new instance.
    pub fn new() -> Self {
        DirectConv
    }
}

impl ConvAlgorithm for DirectConv {
    fn strategy(&self) -> Strategy {
        Strategy::Direct
    }

    fn forward(&self, cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.direct.forward");
        assert_eq!(
            input.shape(),
            cfg.input_shape(),
            "DirectConv::forward: input"
        );
        assert_eq!(
            filters.shape(),
            cfg.filter_shape(),
            "DirectConv::forward: filters"
        );
        let o = cfg.output();
        let (k, s, p, i) = (cfg.kernel, cfg.stride, cfg.pad, cfg.input);

        let mut out = Tensor4::zeros(cfg.output_shape());
        let image_out = cfg.filters * o * o;
        out.as_mut_slice()
            .par_chunks_mut(image_out)
            .enumerate()
            .for_each(|(n, oimg)| {
                for f in 0..cfg.filters {
                    let oplane = &mut oimg[f * o * o..(f + 1) * o * o];
                    for c in 0..cfg.channels {
                        let iplane = input.plane(n, c);
                        let fplane = filters.plane(f, c);
                        for oy in 0..o {
                            for ky in 0..k {
                                let iy = oy * s + ky;
                                if iy < p || iy - p >= i {
                                    continue;
                                }
                                let irow = &iplane[(iy - p) * i..(iy - p + 1) * i];
                                let frow = &fplane[ky * k..(ky + 1) * k];
                                for ox in 0..o {
                                    let mut acc = 0.0f32;
                                    for (kx, &fv) in frow.iter().enumerate() {
                                        let ix = ox * s + kx;
                                        if ix >= p && ix - p < i {
                                            acc += irow[ix - p] * fv;
                                        }
                                    }
                                    oplane[oy * o + ox] += acc;
                                }
                            }
                        }
                    }
                }
            });
        out
    }

    fn backward_data(&self, cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.direct.backward_data");
        assert_eq!(
            grad_out.shape(),
            cfg.output_shape(),
            "DirectConv::backward_data: grad"
        );
        let o = cfg.output();
        let (k, s, p, i) = (cfg.kernel, cfg.stride, cfg.pad, cfg.input);

        let mut grad_in = Tensor4::zeros(cfg.input_shape());
        let image_in = cfg.channels * i * i;
        grad_in
            .as_mut_slice()
            .par_chunks_mut(image_in)
            .enumerate()
            .for_each(|(n, gimg)| {
                for c in 0..cfg.channels {
                    let gplane = &mut gimg[c * i * i..(c + 1) * i * i];
                    for f in 0..cfg.filters {
                        let goplane = grad_out.plane(n, f);
                        let fplane = filters.plane(f, c);
                        for oy in 0..o {
                            for ky in 0..k {
                                let iy = oy * s + ky;
                                if iy < p || iy - p >= i {
                                    continue;
                                }
                                for ox in 0..o {
                                    let g = goplane[oy * o + ox];
                                    if g == 0.0 {
                                        continue;
                                    }
                                    for kx in 0..k {
                                        let ix = ox * s + kx;
                                        if ix >= p && ix - p < i {
                                            gplane[(iy - p) * i + (ix - p)] +=
                                                g * fplane[ky * k + kx];
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            });
        grad_in
    }

    fn backward_filters(&self, cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.direct.backward_filters");
        // Parallel over images with a per-thread filter-gradient
        // accumulator, reduced at the end (cuda-convnet2's
        // conv_weight_acts kernels follow the same partial-sum scheme).
        let partials: Vec<Tensor4> = (0..cfg.batch)
            .into_par_iter()
            .map(|n| {
                let mut single = *cfg;
                single.batch = 1;
                let x1 = Tensor4::from_vec(single.input_shape(), input.image(n).to_vec())
                    .expect("image slice has input shape");
                let g1 = Tensor4::from_vec(single.output_shape(), grad_out.image(n).to_vec())
                    .expect("image slice has output shape");
                reference::backward_filters_ref(&single, &x1, &g1)
            })
            .collect();

        let mut grad_w = Tensor4::zeros(cfg.filter_shape());
        for part in partials {
            grad_w.axpy(1.0, &part).expect("same filter shape");
        }
        grad_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gcnn_tensor::init::uniform_tensor;

    fn configs() -> Vec<ConvConfig> {
        vec![
            ConvConfig::with_channels(2, 3, 8, 4, 3, 1),
            ConvConfig::with_channels(1, 1, 5, 1, 5, 1),
            ConvConfig::with_channels(3, 2, 9, 5, 3, 2),
            ConvConfig::with_channels(2, 4, 7, 2, 2, 3),
            {
                let mut c = ConvConfig::with_channels(2, 2, 6, 3, 3, 1);
                c.pad = 1;
                c
            },
        ]
    }

    #[test]
    fn forward_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 10);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 11);
            let fast = DirectConv.forward(&cfg, &x, &w);
            let slow = reference::forward_ref(&cfg, &x, &w);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-4,
                "forward mismatch at {cfg}"
            );
        }
    }

    #[test]
    fn backward_data_matches_reference() {
        for cfg in configs() {
            let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 12);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 13);
            let fast = DirectConv.backward_data(&cfg, &g, &w);
            let slow = reference::backward_data_ref(&cfg, &g, &w);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-4,
                "backward_data mismatch at {cfg}"
            );
        }
    }

    #[test]
    fn backward_filters_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 14);
            let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 15);
            let fast = DirectConv.backward_filters(&cfg, &x, &g);
            let slow = reference::backward_filters_ref(&cfg, &x, &g);
            assert!(
                fast.max_abs_diff(&slow).unwrap() < 1e-3,
                "backward_filters mismatch at {cfg}"
            );
        }
    }

    #[test]
    fn strategy_tag() {
        assert_eq!(DirectConv.strategy(), Strategy::Direct);
    }
}
