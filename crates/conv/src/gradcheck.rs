//! Finite-difference gradient checking.
//!
//! For a linear-in-each-argument operator like convolution, the gradient
//! of the scalar objective `L = <forward(x, w), g>` w.r.t. `x` must
//! equal `backward_data(g, w)` and w.r.t. `w` must equal
//! `backward_filters(x, g)`. These helpers verify that numerically for
//! any [`ConvAlgorithm`].

use crate::config::ConvConfig;
use crate::strategy::ConvAlgorithm;
use gcnn_tensor::Tensor4;

/// Inner product of two same-shaped tensors.
fn dot(a: &Tensor4, b: &Tensor4) -> f32 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| x * y)
        .sum()
}

/// Maximum relative error between the analytic input gradient and a
/// central finite difference, sampled at `samples` evenly-spaced input
/// coordinates.
pub fn check_backward_data(
    algo: &dyn ConvAlgorithm,
    cfg: &ConvConfig,
    x: &Tensor4,
    w: &Tensor4,
    g: &Tensor4,
    eps: f32,
    samples: usize,
) -> f32 {
    let analytic = algo.backward_data(cfg, g, w);
    let mut xp = x.clone();
    let len = x.shape().len();
    let step = (len / samples.max(1)).max(1);

    let mut worst = 0.0f32;
    for idx in (0..len).step_by(step) {
        let orig = xp.as_slice()[idx];
        xp.as_mut_slice()[idx] = orig + eps;
        let lp = dot(&algo.forward(cfg, &xp, w), g);
        xp.as_mut_slice()[idx] = orig - eps;
        let lm = dot(&algo.forward(cfg, &xp, w), g);
        xp.as_mut_slice()[idx] = orig;

        let numeric = (lp - lm) / (2.0 * eps);
        let exact = analytic.as_slice()[idx];
        let err = (numeric - exact).abs() / exact.abs().max(1.0);
        worst = worst.max(err);
    }
    worst
}

/// Maximum relative error between the analytic filter gradient and a
/// central finite difference, sampled at `samples` filter coordinates.
pub fn check_backward_filters(
    algo: &dyn ConvAlgorithm,
    cfg: &ConvConfig,
    x: &Tensor4,
    w: &Tensor4,
    g: &Tensor4,
    eps: f32,
    samples: usize,
) -> f32 {
    let analytic = algo.backward_filters(cfg, x, g);
    let mut wp = w.clone();
    let len = w.shape().len();
    let step = (len / samples.max(1)).max(1);

    let mut worst = 0.0f32;
    for idx in (0..len).step_by(step) {
        let orig = wp.as_slice()[idx];
        wp.as_mut_slice()[idx] = orig + eps;
        let lp = dot(&algo.forward(cfg, x, &wp), g);
        wp.as_mut_slice()[idx] = orig - eps;
        let lm = dot(&algo.forward(cfg, x, &wp), g);
        wp.as_mut_slice()[idx] = orig;

        let numeric = (lp - lm) / (2.0 * eps);
        let exact = analytic.as_slice()[idx];
        let err = (numeric - exact).abs() / exact.abs().max(1.0);
        worst = worst.max(err);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct::DirectConv;
    use crate::fft_conv::FftConv;
    use crate::unroll::UnrollConv;
    use gcnn_tensor::init::uniform_tensor;

    fn run(algo: &dyn ConvAlgorithm, cfg: ConvConfig) {
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 60);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 61);
        let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 62);
        let e1 = check_backward_data(algo, &cfg, &x, &w, &g, 1e-2, 12);
        assert!(e1 < 0.05, "{}: backward_data rel err {e1}", algo.strategy());
        let e2 = check_backward_filters(algo, &cfg, &x, &w, &g, 1e-2, 12);
        assert!(
            e2 < 0.05,
            "{}: backward_filters rel err {e2}",
            algo.strategy()
        );
    }

    #[test]
    fn direct_gradients_check() {
        run(&DirectConv, ConvConfig::with_channels(2, 2, 6, 3, 3, 1));
        run(&DirectConv, ConvConfig::with_channels(1, 3, 7, 2, 3, 2));
    }

    #[test]
    fn unroll_gradients_check() {
        run(&UnrollConv, ConvConfig::with_channels(2, 2, 6, 3, 3, 1));
        run(&UnrollConv, ConvConfig::with_channels(1, 3, 7, 2, 3, 2));
    }

    #[test]
    fn fft_gradients_check() {
        run(&FftConv, ConvConfig::with_channels(2, 2, 6, 3, 3, 1));
        run(&FftConv, ConvConfig::with_channels(1, 3, 8, 2, 5, 1));
    }
}
