//! Winograd F(2×2, 3×3) convolution — the post-paper optimization.
//!
//! The paper closes by pointing researchers at "convolution optimization
//! on GPUs"; the optimization that actually landed next (cuDNN v5,
//! 2016) was Winograd's minimal-filtering algorithm, which computes a
//! 2×2 output tile from a 4×4 input tile with 16 multiplies instead of
//! the direct method's 36 — a 2.25× reduction in multiply count for
//! 3×3/stride-1 layers, precisely the shapes (VGG, GoogLeNet 3×3
//! branches, Table I's Conv2/Conv5) where fbfft loses to cuDNN.
//!
//! This module implements the real algorithm:
//!
//! ```text
//!   Y = Aᵀ [ (G g Gᵀ) ⊙ (Bᵀ d B) ] A
//! ```
//!
//! with the canonical F(2,3) matrices, tiled over the output plane and
//! accumulated over input channels in the transform domain. The forward
//! pass is Winograd; the backward passes delegate to the unrolling
//! strategy (as real frameworks did before dedicated Winograd gradient
//! kernels existed).

use crate::config::ConvConfig;
use crate::strategy::{ConvAlgorithm, Strategy, Unsupported};
use crate::unroll::UnrollConv;
use gcnn_tensor::{workspace, Tensor4};
use rayon::prelude::*;

/// The Winograd F(2×2, 3×3) convolution algorithm.
#[derive(Debug, Clone, Copy, Default)]
pub struct WinogradConv;

impl WinogradConv {
    /// Create a new instance.
    pub fn new() -> Self {
        WinogradConv
    }

    /// Multiplies per output element: 16 transform-domain products per
    /// 2×2 tile = 4 per output, vs 9 for direct 3×3 — the 2.25×
    /// arithmetic saving.
    pub const MULTIPLY_REDUCTION: f64 = 2.25;
}

/// Filter transform `G g Gᵀ`: 3×3 → 4×4.
/// `G = [[1, 0, 0], [½, ½, ½], [½, −½, ½], [0, 0, 1]]`.
fn transform_filter(g: &[f32]) -> [f32; 16] {
    debug_assert_eq!(g.len(), 9);
    // Rows of G·g (4×3).
    let mut gg = [0.0f32; 12];
    for col in 0..3 {
        let (g0, g1, g2) = (g[col], g[3 + col], g[6 + col]);
        gg[col] = g0;
        gg[3 + col] = 0.5 * (g0 + g1 + g2);
        gg[6 + col] = 0.5 * (g0 - g1 + g2);
        gg[9 + col] = g2;
    }
    // (G·g)·Gᵀ (4×4).
    let mut out = [0.0f32; 16];
    for row in 0..4 {
        let (a, b, c) = (gg[row * 3], gg[row * 3 + 1], gg[row * 3 + 2]);
        out[row * 4] = a;
        out[row * 4 + 1] = 0.5 * (a + b + c);
        out[row * 4 + 2] = 0.5 * (a - b + c);
        out[row * 4 + 3] = c;
    }
    out
}

/// Input-tile transform `Bᵀ d B`: 4×4 → 4×4.
/// `Bᵀ = [[1, 0, −1, 0], [0, 1, 1, 0], [0, −1, 1, 0], [0, 1, 0, −1]]`.
fn transform_input(d: &[f32; 16]) -> [f32; 16] {
    // Bᵀ·d (4×4).
    let mut bd = [0.0f32; 16];
    for col in 0..4 {
        let (d0, d1, d2, d3) = (d[col], d[4 + col], d[8 + col], d[12 + col]);
        bd[col] = d0 - d2;
        bd[4 + col] = d1 + d2;
        bd[8 + col] = d2 - d1;
        bd[12 + col] = d1 - d3;
    }
    // (Bᵀ·d)·B (4×4).
    let mut out = [0.0f32; 16];
    for row in 0..4 {
        let (a, b, c, d4) = (
            bd[row * 4],
            bd[row * 4 + 1],
            bd[row * 4 + 2],
            bd[row * 4 + 3],
        );
        out[row * 4] = a - c;
        out[row * 4 + 1] = b + c;
        out[row * 4 + 2] = c - b;
        out[row * 4 + 3] = b - d4;
    }
    out
}

/// Output transform `Aᵀ m A`: 4×4 → 2×2.
/// `Aᵀ = [[1, 1, 1, 0], [0, 1, −1, −1]]`.
fn transform_output(m: &[f32; 16]) -> [f32; 4] {
    // Aᵀ·m (2×4).
    let mut am = [0.0f32; 8];
    for col in 0..4 {
        let (m0, m1, m2, m3) = (m[col], m[4 + col], m[8 + col], m[12 + col]);
        am[col] = m0 + m1 + m2;
        am[4 + col] = m1 - m2 - m3;
    }
    // (Aᵀ·m)·A (2×2).
    let mut out = [0.0f32; 4];
    for row in 0..2 {
        let (a, b, c, d) = (
            am[row * 4],
            am[row * 4 + 1],
            am[row * 4 + 2],
            am[row * 4 + 3],
        );
        out[row * 2] = a + b + c;
        out[row * 2 + 1] = b - c - d;
    }
    out
}

impl ConvAlgorithm for WinogradConv {
    fn strategy(&self) -> Strategy {
        // Classified with the transform-domain family.
        Strategy::Fft
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        if cfg.kernel != 3 {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("Winograd F(2,3) requires 3×3 kernels, got {}", cfg.kernel),
            });
        }
        if cfg.stride != 1 {
            return Err(Unsupported::StrideNotOne { stride: cfg.stride });
        }
        Ok(())
    }

    fn forward(&self, cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.winograd.forward");
        self.supports(cfg)
            .expect("WinogradConv::forward: unsupported config");
        assert_eq!(
            input.shape(),
            cfg.input_shape(),
            "WinogradConv::forward: input"
        );
        assert_eq!(
            filters.shape(),
            cfg.filter_shape(),
            "WinogradConv::forward: filters"
        );

        let o = cfg.output();
        let i = cfg.input;
        let p = cfg.pad;
        let tiles = o.div_ceil(2);

        // Pre-transform all filters: U[f][c] = G g Gᵀ (flat 16-wide
        // records in arena scratch).
        let mut transformed_filters = workspace::take_f32(cfg.filters * cfg.channels * 16);
        for idx in 0..cfg.filters * cfg.channels {
            let (f, c) = (idx / cfg.channels, idx % cfg.channels);
            transformed_filters[idx * 16..(idx + 1) * 16]
                .copy_from_slice(&transform_filter(filters.plane(f, c)));
        }
        let transformed_filters = &transformed_filters;

        let mut out = Tensor4::zeros(cfg.output_shape());
        let image_out = cfg.filters * o * o;
        out.as_mut_slice()
            .par_chunks_mut(image_out)
            .enumerate()
            .for_each(|(n, oimg)| {
                // Transform every 4×4 input tile of every channel once
                // per image: V[c][tile] = Bᵀ d B. Arena scratch: every
                // record is fully written before it is read.
                let mut v = workspace::take_f32(cfg.channels * tiles * tiles * 16);
                for c in 0..cfg.channels {
                    let plane = input.plane(n, c);
                    for ty in 0..tiles {
                        for tx in 0..tiles {
                            let mut d = [0.0f32; 16];
                            for dy in 0..4 {
                                for dx in 0..4 {
                                    // Input coordinate of this tap,
                                    // offset by padding.
                                    let yy = (ty * 2 + dy) as isize - p as isize;
                                    let xx = (tx * 2 + dx) as isize - p as isize;
                                    if yy >= 0 && (yy as usize) < i && xx >= 0 && (xx as usize) < i
                                    {
                                        d[dy * 4 + dx] = plane[yy as usize * i + xx as usize];
                                    }
                                }
                            }
                            let rec = (c * tiles + ty) * tiles + tx;
                            v[rec * 16..(rec + 1) * 16].copy_from_slice(&transform_input(&d));
                        }
                    }
                }

                // Per filter: elementwise multiply-accumulate over
                // channels in the transform domain, then the output
                // transform per tile.
                for f in 0..cfg.filters {
                    let oplane = &mut oimg[f * o * o..(f + 1) * o * o];
                    for ty in 0..tiles {
                        for tx in 0..tiles {
                            let mut m = [0.0f32; 16];
                            for c in 0..cfg.channels {
                                let fi = (f * cfg.channels + c) * 16;
                                let u = &transformed_filters[fi..fi + 16];
                                let rec = ((c * tiles + ty) * tiles + tx) * 16;
                                let vv = &v[rec..rec + 16];
                                for t in 0..16 {
                                    m[t] += u[t] * vv[t];
                                }
                            }
                            let y = transform_output(&m);
                            for dy in 0..2 {
                                for dx in 0..2 {
                                    let (oy, ox) = (ty * 2 + dy, tx * 2 + dx);
                                    if oy < o && ox < o {
                                        oplane[oy * o + ox] = y[dy * 2 + dx];
                                    }
                                }
                            }
                        }
                    }
                }
            });
        out
    }

    fn backward_data(&self, cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.winograd.backward_data");
        // Delegate: dedicated Winograd gradient kernels postdate the
        // paper's era; frameworks fell back to im2col for wgrad/dgrad.
        UnrollConv::new().backward_data(cfg, grad_out, filters)
    }

    fn backward_filters(&self, cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.winograd.backward_filters");
        UnrollConv::new().backward_filters(cfg, input, grad_out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gcnn_tensor::init::uniform_tensor;

    fn configs() -> Vec<ConvConfig> {
        vec![
            ConvConfig::with_channels(2, 3, 8, 4, 3, 1), // even output (6)
            ConvConfig::with_channels(1, 1, 7, 2, 3, 1), // odd output (5): partial tiles
            ConvConfig::with_channels(3, 4, 10, 5, 3, 1),
            {
                let mut c = ConvConfig::with_channels(2, 2, 6, 3, 3, 1);
                c.pad = 1; // padded: output 6
                c
            },
        ]
    }

    #[test]
    fn forward_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 80);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 81);
            let fast = WinogradConv.forward(&cfg, &x, &w);
            let slow = reference::forward_ref(&cfg, &x, &w);
            let dist = fast.rel_l2_dist(&slow).unwrap();
            assert!(dist < 1e-5, "mismatch at {cfg}: rel l2 {dist}");
        }
    }

    #[test]
    fn filter_transform_known_values() {
        // Identity-center filter: g = delta at (1,1). G g Gᵀ has the
        // ½·½ = ¼ pattern in the middle block.
        let mut g = [0.0f32; 9];
        g[4] = 1.0;
        let u = transform_filter(&g);
        assert_eq!(u[0], 0.0);
        assert!((u[5] - 0.25).abs() < 1e-6);
        assert!((u[6] + 0.25).abs() < 1e-6);
        assert!((u[9] + 0.25).abs() < 1e-6);
        assert!((u[10] - 0.25).abs() < 1e-6);
    }

    #[test]
    fn winograd_identity_via_delta_filter() {
        // A delta filter at the top-left tap copies the input.
        let cfg = ConvConfig::with_channels(1, 1, 6, 1, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 82);
        let mut w = Tensor4::zeros(cfg.filter_shape());
        w.set(0, 0, 0, 0, 1.0);
        let y = WinogradConv.forward(&cfg, &x, &w);
        for oy in 0..4 {
            for ox in 0..4 {
                assert!((y.get(0, 0, oy, ox) - x.get(0, 0, oy, ox)).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn rejects_non_3x3_and_strides() {
        assert!(WinogradConv
            .supports(&ConvConfig::with_channels(1, 1, 8, 1, 5, 1))
            .is_err());
        assert!(matches!(
            WinogradConv.supports(&ConvConfig::with_channels(1, 1, 8, 1, 3, 2)),
            Err(Unsupported::StrideNotOne { .. })
        ));
        assert!(WinogradConv
            .supports(&ConvConfig::with_channels(1, 1, 8, 1, 3, 1))
            .is_ok());
    }

    #[test]
    fn backward_delegates_correctly() {
        let cfg = ConvConfig::with_channels(2, 2, 8, 3, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 83);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 84);
        let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 85);
        let gd = WinogradConv.backward_data(&cfg, &g, &w);
        let gd_ref = reference::backward_data_ref(&cfg, &g, &w);
        assert!(gd.max_abs_diff(&gd_ref).unwrap() < 1e-3);
        let gw = WinogradConv.backward_filters(&cfg, &x, &g);
        let gw_ref = reference::backward_filters_ref(&cfg, &x, &g);
        assert!(gw.max_abs_diff(&gw_ref).unwrap() < 1e-2);
    }

    /// Full gradient check through the trait (forward is Winograd,
    /// backward is delegated — they must be consistent as a pair).
    #[test]
    fn gradcheck_hybrid() {
        let cfg = ConvConfig::with_channels(2, 2, 6, 3, 3, 1);
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 86);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 87);
        let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 88);
        let e = crate::gradcheck::check_backward_data(&WinogradConv, &cfg, &x, &w, &g, 1e-2, 10);
        assert!(e < 0.05, "rel err {e}");
    }
}
