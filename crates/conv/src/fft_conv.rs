//! FFT-based convolution.
//!
//! Paper §II-B: *"First, inputs and filter banks are transformed from
//! the spatial domain to the Fourier domain […] Second, those
//! transformed matrices are multiplied in the Fourier domain. Finally,
//! the product results are inversed."* We follow fbfft's exact pipeline
//! (§V-A): per-plane 2-D FFTs, a layout transpose from plane-major
//! ("BDHW") to bin-major ("HWBD"), one complex GEMM per frequency bin,
//! a transpose back, and an inverse FFT.
//!
//! Transforms are padded to the next power of two ≥ the (padded) input
//! size — enough for *valid* correlation, since every needed output lag
//! stays below the transform size and circular wrap-around never
//! contaminates it. The kernel size does not enter the transform size at
//! all, which is exactly why the paper's Fig. 3d shows fbfft's runtime
//! flat in `k` while the unrolling strategies grow as `k²`.
//!
//! Plans come from the process-wide [`RfftPlan`] cache and every
//! intermediate (spectra, transposes, bin matrices) is checked out of
//! the thread-local [`gcnn_tensor::workspace`] arena, so repeated
//! passes at one configuration are steady-state allocation-free apart
//! from the output tensor itself.

use crate::config::ConvConfig;
use crate::strategy::{ConvAlgorithm, Strategy, Unsupported};
use gcnn_fft::{split_enabled, RfftPlan};
use gcnn_gemm::batched::{batched_cgemm, batched_cgemm_split};
use gcnn_tensor::{workspace, Complex32, Shape4, Tensor4};
use rayon::prelude::*;

/// The FFT convolution algorithm (stride-1 only, like fbfft and
/// Theano-fft).
#[derive(Debug, Clone, Copy, Default)]
pub struct FftConv;

impl FftConv {
    /// Create a new instance.
    pub fn new() -> Self {
        FftConv
    }
}

/// Forward-transform every `h×w` plane of `t`, zero-padded to `n×n`,
/// into plane-major Hermitian half-spectra:
/// `out[plane · n·(n/2+1) + bin]` — the storage layout fbfft's R2C
/// transforms use. Per-plane pad buffers come from the workspace arena.
fn plane_spectra_into(t: &Tensor4, n: usize, plan: &RfftPlan, out: &mut [Complex32]) {
    let s = t.shape();
    let planes = s.n * s.c;
    let bins = plan.spectrum_len();
    debug_assert_eq!(out.len(), planes * bins);
    out.par_chunks_mut(bins).enumerate().for_each(|(p, chunk)| {
        let (pn, pc) = (p / s.c, p % s.c);
        let src = t.plane(pn, pc);
        // Zero-pad the h×w plane into the n×n transform buffer —
        // copied rows zero only their right margin, the bottom band
        // is cleared wholesale (halo-only fill on reused scratch).
        let mut buf = workspace::take_f32(n * n);
        for h in 0..s.h {
            buf[h * n..h * n + s.w].copy_from_slice(&src[h * s.w..(h + 1) * s.w]);
            buf[h * n + s.w..(h + 1) * n].fill(0.0);
        }
        buf[s.h * n..].fill(0.0);
        plan.forward_into(&buf, chunk);
    });
}

/// Swap the two plane axes of a plane-major spectrum buffer:
/// `[d0][d1][bin] → [d1][d0][bin]`. This plus [`gather_bins_into`] is
/// fbfft's `Transpose` kernel.
fn swap_planes_into(spec: &[Complex32], d0: usize, d1: usize, bins: usize, out: &mut [Complex32]) {
    debug_assert_eq!(spec.len(), d0 * d1 * bins);
    debug_assert_eq!(out.len(), spec.len());
    for i0 in 0..d0 {
        for i1 in 0..d1 {
            let src = &spec[(i0 * d1 + i1) * bins..(i0 * d1 + i1 + 1) * bins];
            out[(i1 * d0 + i0) * bins..(i1 * d0 + i0 + 1) * bins].copy_from_slice(src);
        }
    }
}

/// Plane-major → bin-major: `out[bin · planes + plane]`.
fn gather_bins_into(spec: &[Complex32], planes: usize, bins: usize, out: &mut [Complex32]) {
    debug_assert_eq!(spec.len(), planes * bins);
    debug_assert_eq!(out.len(), spec.len());
    out.par_chunks_mut(planes)
        .enumerate()
        .for_each(|(bin, chunk)| {
            for (p, slot) in chunk.iter_mut().enumerate() {
                *slot = spec[p * bins + bin];
            }
        });
}

/// Bin-major → plane-major (inverse of [`gather_bins_into`]).
fn scatter_bins_into(binmat: &[Complex32], planes: usize, bins: usize, out: &mut [Complex32]) {
    debug_assert_eq!(binmat.len(), planes * bins);
    debug_assert_eq!(out.len(), binmat.len());
    out.par_chunks_mut(bins).enumerate().for_each(|(p, chunk)| {
        for (bin, slot) in chunk.iter_mut().enumerate() {
            *slot = binmat[bin * planes + p];
        }
    });
}

/// Inverse-transform plane-major half-spectra and crop each plane to
/// `out_h×out_w` at offset `(top, left)`, writing into a fresh tensor of
/// shape `(d0, d1, out_h, out_w)`.
#[allow(clippy::too_many_arguments)] // plane geometry is passed unpacked on the hot path
fn planes_to_tensor(
    spec: &[Complex32],
    d0: usize,
    d1: usize,
    n: usize,
    plan: &RfftPlan,
    out_h: usize,
    out_w: usize,
    top: usize,
    left: usize,
) -> Tensor4 {
    let bins = plan.spectrum_len();
    let mut out = Tensor4::zeros(Shape4::new(d0, d1, out_h, out_w));
    let plane_len = out_h * out_w;
    out.as_mut_slice()
        .par_chunks_mut(plane_len)
        .enumerate()
        .for_each(|(p, dst)| {
            let mut real = workspace::take_f32(n * n);
            plan.inverse_into(&spec[p * bins..(p + 1) * bins], &mut real);
            for h in 0..out_h {
                for w in 0..out_w {
                    dst[h * out_w + w] = real[(h + top) * n + (w + left)];
                }
            }
        });
    out
}

/// Split-complex variant of [`plane_spectra_into`]: forward-transform
/// every plane straight into separate re/im spectrum planes
/// (`sre/sim[plane · bins + bin]`) — the layout the batch-major lane
/// engine emits natively, so no interleaved [`Complex32`] is built.
fn plane_spectra_split_into(
    t: &Tensor4,
    n: usize,
    plan: &RfftPlan,
    sre: &mut [f32],
    sim: &mut [f32],
) {
    let s = t.shape();
    let bins = plan.spectrum_len();
    debug_assert_eq!(sre.len(), s.n * s.c * bins);
    debug_assert_eq!(sim.len(), sre.len());
    sre.par_chunks_mut(bins)
        .zip(sim.par_chunks_mut(bins))
        .enumerate()
        .for_each(|(p, (re, im))| {
            let (pn, pc) = (p / s.c, p % s.c);
            let src = t.plane(pn, pc);
            let mut buf = workspace::take_f32(n * n);
            for h in 0..s.h {
                buf[h * n..h * n + s.w].copy_from_slice(&src[h * s.w..(h + 1) * s.w]);
                buf[h * n + s.w..(h + 1) * n].fill(0.0);
            }
            buf[s.h * n..].fill(0.0);
            plan.forward_split_into(&buf, re, im);
        });
}

/// Fused plane-swap + bin gather over one split spectrum plane:
/// `out[bin · d0·d1 + i1·d0 + i0] = spec[(i0·d1 + i1) · bins + bin]`.
/// One pass replaces the interleaved path's `swap_planes_into` +
/// `gather_bins_into` pair — the intermediate swapped buffer never
/// materializes. Call once per re/im plane.
fn gather_bins_swapped_split(spec: &[f32], d0: usize, d1: usize, bins: usize, out: &mut [f32]) {
    debug_assert_eq!(spec.len(), d0 * d1 * bins);
    debug_assert_eq!(out.len(), spec.len());
    out.par_chunks_mut(d0 * d1)
        .enumerate()
        .for_each(|(bin, chunk)| {
            for i0 in 0..d0 {
                for i1 in 0..d1 {
                    chunk[i1 * d0 + i0] = spec[(i0 * d1 + i1) * bins + bin];
                }
            }
        });
}

/// Plane-major → bin-major gather over one split spectrum plane (no
/// axis swap): `out[bin · planes + p] = spec[p · bins + bin]`.
fn gather_bins_split(spec: &[f32], planes: usize, bins: usize, out: &mut [f32]) {
    debug_assert_eq!(spec.len(), planes * bins);
    debug_assert_eq!(out.len(), spec.len());
    out.par_chunks_mut(planes)
        .enumerate()
        .for_each(|(bin, chunk)| {
            for (p, slot) in chunk.iter_mut().enumerate() {
                *slot = spec[p * bins + bin];
            }
        });
}

/// Bin-major → plane-major scatter (inverse of [`gather_bins_split`]).
fn scatter_bins_split(binmat: &[f32], planes: usize, bins: usize, out: &mut [f32]) {
    debug_assert_eq!(binmat.len(), planes * bins);
    debug_assert_eq!(out.len(), binmat.len());
    out.par_chunks_mut(bins).enumerate().for_each(|(p, chunk)| {
        for (bin, slot) in chunk.iter_mut().enumerate() {
            *slot = binmat[bin * planes + p];
        }
    });
}

/// Fused bin scatter + plane swap, the inverse-side mirror of
/// [`gather_bins_swapped_split`]: the bin-major product row `i0·d1 + i1`
/// lands at plane `i1·d0 + i0`, so
/// `out[(i1·d0 + i0) · bins + bin] = binmat[bin · d0·d1 + i0·d1 + i1]`.
fn scatter_bins_swapped_split(binmat: &[f32], d0: usize, d1: usize, bins: usize, out: &mut [f32]) {
    debug_assert_eq!(binmat.len(), d0 * d1 * bins);
    debug_assert_eq!(out.len(), binmat.len());
    out.par_chunks_mut(bins).enumerate().for_each(|(q, chunk)| {
        let (i1, i0) = (q / d0, q % d0);
        for (bin, slot) in chunk.iter_mut().enumerate() {
            *slot = binmat[bin * d0 * d1 + i0 * d1 + i1];
        }
    });
}

/// Split-complex variant of [`planes_to_tensor`]: inverse-transform
/// plane-major split half-spectra and crop. Takes the spectra mutably
/// and runs [`RfftPlan::inverse_split_inplace`] on each plane — the
/// callers own the (arena-backed) spectrum scratch and never read it
/// again, so the in-place column pass saves a defensive spectrum copy
/// per plane.
#[allow(clippy::too_many_arguments)] // plane geometry is passed unpacked on the hot path
fn planes_to_tensor_split(
    sre: &mut [f32],
    sim: &mut [f32],
    d0: usize,
    d1: usize,
    n: usize,
    plan: &RfftPlan,
    out_h: usize,
    out_w: usize,
    top: usize,
    left: usize,
) -> Tensor4 {
    let bins = plan.spectrum_len();
    let mut out = Tensor4::zeros(Shape4::new(d0, d1, out_h, out_w));
    let plane_len = out_h * out_w;
    out.as_mut_slice()
        .par_chunks_mut(plane_len)
        .zip(sre.par_chunks_mut(bins).zip(sim.par_chunks_mut(bins)))
        .for_each(|(dst, (pre, pim))| {
            let mut real = workspace::take_f32(n * n);
            plan.inverse_split_inplace(pre, pim, &mut real);
            for h in 0..out_h {
                for w in 0..out_w {
                    dst[h * out_w + w] = real[(h + top) * n + (w + left)];
                }
            }
        });
    out
}

/// Split-complex forward pipeline (taken whenever SIMD dispatch is
/// active): batch-major lane transforms → fused swap+gather into
/// bin-major split planes → split-complex batched CGEMM → fused
/// scatter+swap → split inverse + crop. Interleaved [`Complex32`] never
/// materializes between the transforms and the product, and every
/// intermediate lives in the workspace arena.
fn forward_split(
    cfg: &ConvConfig,
    padded: &Tensor4,
    filters: &Tensor4,
    n: usize,
    plan: &RfftPlan,
) -> Tensor4 {
    let _span = gcnn_trace::span("conv.fft.split.forward");
    let bins = plan.spectrum_len();
    let (b, c, f) = (cfg.batch, cfg.channels, cfg.filters);

    // 1. Forward transforms straight into split spectrum planes.
    let mut in_re = workspace::take_f32(b * c * bins); // [n][c][bin]
    let mut in_im = workspace::take_f32(b * c * bins);
    plane_spectra_split_into(padded, n, plan, &mut in_re, &mut in_im);
    let mut ft_re = workspace::take_f32(f * c * bins); // [f][c][bin]
    let mut ft_im = workspace::take_f32(f * c * bins);
    plane_spectra_split_into(filters, n, plan, &mut ft_re, &mut ft_im);

    // 2. Fused BDHW → HWBD transpose (swap+gather in one pass).
    let mut b_re = workspace::take_f32(b * c * bins); // [bin][c×b]
    let mut b_im = workspace::take_f32(b * c * bins);
    gather_bins_swapped_split(&in_re, b, c, bins, &mut b_re);
    gather_bins_swapped_split(&in_im, b, c, bins, &mut b_im);
    let mut a_re = workspace::take_f32(f * c * bins); // [bin][f×c]
    let mut a_im = workspace::take_f32(f * c * bins);
    gather_bins_split(&ft_re, f * c, bins, &mut a_re);
    gather_bins_split(&ft_im, f * c, bins, &mut a_im);

    // 3. One split-complex [f×c]·[c×b] GEMM per bin (conjugated filters
    //    → correlation).
    let mut c_re = workspace::take_f32(bins * f * b);
    let mut c_im = workspace::take_f32(bins * f * b);
    batched_cgemm_split(
        true,
        false,
        f,
        b,
        c,
        bins,
        &a_re,
        &a_im,
        f * c,
        &b_re,
        &b_im,
        c * b,
        &mut c_re,
        &mut c_im,
        f * b,
    );

    // 4. Fused transpose back, 5. split inverse + crop.
    let mut out_re = workspace::take_f32(bins * f * b); // [b][f][bin]
    let mut out_im = workspace::take_f32(bins * f * b);
    scatter_bins_swapped_split(&c_re, f, b, bins, &mut out_re);
    scatter_bins_swapped_split(&c_im, f, b, bins, &mut out_im);
    planes_to_tensor_split(
        &mut out_re,
        &mut out_im,
        b,
        f,
        n,
        plan,
        cfg.output(),
        cfg.output(),
        0,
        0,
    )
}

/// Split-complex data-gradient pipeline — mirror of [`forward_split`]
/// with un-conjugated filters (true convolution) and an interior crop
/// when the forward pass padded.
fn backward_data_split(
    cfg: &ConvConfig,
    grad_out: &Tensor4,
    filters: &Tensor4,
    n: usize,
    plan: &RfftPlan,
) -> Tensor4 {
    let _span = gcnn_trace::span("conv.fft.split.backward_data");
    let bins = plan.spectrum_len();
    let (b, c, f) = (cfg.batch, cfg.channels, cfg.filters);

    let mut g_re = workspace::take_f32(b * f * bins); // [n][f][bin]
    let mut g_im = workspace::take_f32(b * f * bins);
    plane_spectra_split_into(grad_out, n, plan, &mut g_re, &mut g_im);
    let mut ft_re = workspace::take_f32(f * c * bins); // [f][c][bin]
    let mut ft_im = workspace::take_f32(f * c * bins);
    plane_spectra_split_into(filters, n, plan, &mut ft_re, &mut ft_im);

    // gin[c,n] = Σ_f filt[c,f] · gout[f,n] per bin.
    let mut a_re = workspace::take_f32(f * c * bins); // [bin][c×f]
    let mut a_im = workspace::take_f32(f * c * bins);
    gather_bins_swapped_split(&ft_re, f, c, bins, &mut a_re);
    gather_bins_swapped_split(&ft_im, f, c, bins, &mut a_im);
    let mut b_re = workspace::take_f32(b * f * bins); // [bin][f×b]
    let mut b_im = workspace::take_f32(b * f * bins);
    gather_bins_swapped_split(&g_re, b, f, bins, &mut b_re);
    gather_bins_swapped_split(&g_im, b, f, bins, &mut b_im);

    let mut c_re = workspace::take_f32(bins * c * b);
    let mut c_im = workspace::take_f32(bins * c * b);
    batched_cgemm_split(
        false,
        false,
        c,
        b,
        f,
        bins,
        &a_re,
        &a_im,
        c * f,
        &b_re,
        &b_im,
        f * b,
        &mut c_re,
        &mut c_im,
        c * b,
    );

    let mut out_re = workspace::take_f32(bins * c * b); // [b][c][bin]
    let mut out_im = workspace::take_f32(bins * c * b);
    scatter_bins_swapped_split(&c_re, c, b, bins, &mut out_re);
    scatter_bins_swapped_split(&c_im, c, b, bins, &mut out_im);
    planes_to_tensor_split(
        &mut out_re,
        &mut out_im,
        b,
        c,
        n,
        plan,
        cfg.input,
        cfg.input,
        cfg.pad,
        cfg.pad,
    )
}

/// Split-complex filter-gradient pipeline: correlation of the (padded)
/// input with the output gradient, reduced over the batch axis.
fn backward_filters_split(
    cfg: &ConvConfig,
    padded: &Tensor4,
    grad_out: &Tensor4,
    n: usize,
    plan: &RfftPlan,
) -> Tensor4 {
    let _span = gcnn_trace::span("conv.fft.split.backward_filters");
    let bins = plan.spectrum_len();
    let (b, c, f) = (cfg.batch, cfg.channels, cfg.filters);

    let mut in_re = workspace::take_f32(b * c * bins); // [n][c][bin]
    let mut in_im = workspace::take_f32(b * c * bins);
    plane_spectra_split_into(padded, n, plan, &mut in_re, &mut in_im);
    let mut g_re = workspace::take_f32(b * f * bins); // [n][f][bin]
    let mut g_im = workspace::take_f32(b * f * bins);
    plane_spectra_split_into(grad_out, n, plan, &mut g_re, &mut g_im);

    // gw[f,c] = Σ_n conj(gout[f,n]) · in[n,c] per bin.
    let mut a_re = workspace::take_f32(b * f * bins); // [bin][f×b]
    let mut a_im = workspace::take_f32(b * f * bins);
    gather_bins_swapped_split(&g_re, b, f, bins, &mut a_re);
    gather_bins_swapped_split(&g_im, b, f, bins, &mut a_im);
    let mut b_re = workspace::take_f32(b * c * bins); // [bin][b×c]
    let mut b_im = workspace::take_f32(b * c * bins);
    gather_bins_split(&in_re, b * c, bins, &mut b_re);
    gather_bins_split(&in_im, b * c, bins, &mut b_im);

    let mut c_re = workspace::take_f32(bins * f * c);
    let mut c_im = workspace::take_f32(bins * f * c);
    batched_cgemm_split(
        true,
        false,
        f,
        c,
        b,
        bins,
        &a_re,
        &a_im,
        f * b,
        &b_re,
        &b_im,
        b * c,
        &mut c_re,
        &mut c_im,
        f * c,
    );

    let mut gw_re = workspace::take_f32(bins * f * c); // [f][c][bin]
    let mut gw_im = workspace::take_f32(bins * f * c);
    scatter_bins_split(&c_re, f * c, bins, &mut gw_re);
    scatter_bins_split(&c_im, f * c, bins, &mut gw_im);
    planes_to_tensor_split(
        &mut gw_re, &mut gw_im, f, c, n, plan, cfg.kernel, cfg.kernel, 0, 0,
    )
}

impl ConvAlgorithm for FftConv {
    fn strategy(&self) -> Strategy {
        Strategy::Fft
    }

    fn supports(&self, cfg: &ConvConfig) -> Result<(), Unsupported> {
        if !cfg.is_valid() {
            return Err(Unsupported::InvalidGeometry {
                reason: format!("{cfg}"),
            });
        }
        // Paper §IV-B: "fbfft and Theano-conv2d_fft only support stride
        // size of 1".
        if cfg.stride != 1 {
            return Err(Unsupported::StrideNotOne { stride: cfg.stride });
        }
        Ok(())
    }

    fn forward(&self, cfg: &ConvConfig, input: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.fft.forward");
        self.supports(cfg)
            .expect("FftConv::forward: unsupported config");
        assert_eq!(input.shape(), cfg.input_shape(), "FftConv::forward: input");
        assert_eq!(
            filters.shape(),
            cfg.filter_shape(),
            "FftConv::forward: filters"
        );

        // Borrow the input directly when no spatial padding is needed —
        // the previous implementation cloned the whole tensor.
        let padded_storage;
        let padded: &Tensor4 = if cfg.pad == 0 {
            input
        } else {
            let s = input.shape();
            padded_storage = gcnn_tensor::pad::pad_planes(
                input,
                s.h + 2 * cfg.pad,
                s.w + 2 * cfg.pad,
                cfg.pad,
                cfg.pad,
            );
            &padded_storage
        };
        let ieff = cfg.input + 2 * cfg.pad;
        let n = ieff.next_power_of_two();
        let plan = RfftPlan::cached(n);
        let bins = plan.spectrum_len();
        let (b, c, f) = (cfg.batch, cfg.channels, cfg.filters);

        if split_enabled() {
            return forward_split(cfg, padded, filters, n, &plan);
        }

        // 1. Forward transforms (fbfft's decimateInFrequency).
        let mut in_spec = workspace::take_c32(b * c * bins); // [n][c][bin]
        plane_spectra_into(padded, n, &plan, &mut in_spec);
        let mut filt_spec = workspace::take_c32(f * c * bins); // [f][c][bin]
        plane_spectra_into(filters, n, &plan, &mut filt_spec);

        // 2. Transpose BDHW → HWBD.
        let mut swapped = workspace::take_c32(b * c * bins);
        swap_planes_into(&in_spec, b, c, bins, &mut swapped);
        let mut b_bins = workspace::take_c32(b * c * bins); // [bin][c×b]
        gather_bins_into(&swapped, c * b, bins, &mut b_bins);
        let mut a_bins = workspace::take_c32(f * c * bins); // [bin][f×c]
        gather_bins_into(&filt_spec, f * c, bins, &mut a_bins);

        // 3. One [f×c]·[c×b] complex GEMM per bin; conjugated filters
        //    turn the circular product into correlation (what CNNs
        //    compute).
        let mut c_bins = workspace::take_c32(bins * f * b);
        batched_cgemm(
            true,
            false,
            f,
            b,
            c,
            bins,
            &a_bins,
            f * c,
            &b_bins,
            c * b,
            &mut c_bins,
            f * b,
        );

        // 4. Transpose back and 5. inverse transform + crop to (o × o).
        let mut scattered = workspace::take_c32(bins * f * b);
        scatter_bins_into(&c_bins, f * b, bins, &mut scattered);
        let mut out_spec = workspace::take_c32(bins * f * b);
        swap_planes_into(&scattered, f, b, bins, &mut out_spec);
        planes_to_tensor(&out_spec, b, f, n, &plan, cfg.output(), cfg.output(), 0, 0)
    }

    fn backward_data(&self, cfg: &ConvConfig, grad_out: &Tensor4, filters: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.fft.backward_data");
        self.supports(cfg)
            .expect("FftConv::backward_data: unsupported config");
        assert_eq!(
            grad_out.shape(),
            cfg.output_shape(),
            "FftConv::backward_data: grad"
        );

        let ieff = cfg.input + 2 * cfg.pad;
        let n = ieff.next_power_of_two();
        let plan = RfftPlan::cached(n);
        let bins = plan.spectrum_len();
        let (b, c, f) = (cfg.batch, cfg.channels, cfg.filters);

        if split_enabled() {
            return backward_data_split(cfg, grad_out, filters, n, &plan);
        }

        let mut gout_spec = workspace::take_c32(b * f * bins); // [n][f][bin]
        plane_spectra_into(grad_out, n, &plan, &mut gout_spec);
        let mut filt_spec = workspace::take_c32(f * c * bins); // [f][c][bin]
        plane_spectra_into(filters, n, &plan, &mut filt_spec);

        // gin_spec[c,n] = Σ_f filt_spec[c,f] · gout_spec[f,n]  (true
        // convolution — no conjugation).
        let mut swapped = workspace::take_c32(f * c * bins);
        swap_planes_into(&filt_spec, f, c, bins, &mut swapped);
        let mut a_bins = workspace::take_c32(f * c * bins); // [bin][c×f]
        gather_bins_into(&swapped, c * f, bins, &mut a_bins);
        let mut gswapped = workspace::take_c32(b * f * bins);
        swap_planes_into(&gout_spec, b, f, bins, &mut gswapped);
        let mut b_bins = workspace::take_c32(b * f * bins); // [bin][f×b]
        gather_bins_into(&gswapped, f * b, bins, &mut b_bins);

        let mut c_bins = workspace::take_c32(bins * c * b);
        batched_cgemm(
            false,
            false,
            c,
            b,
            f,
            bins,
            &a_bins,
            c * f,
            &b_bins,
            f * b,
            &mut c_bins,
            c * b,
        );

        let mut scattered = workspace::take_c32(bins * c * b);
        scatter_bins_into(&c_bins, c * b, bins, &mut scattered);
        let mut gin_spec = workspace::take_c32(bins * c * b); // [n][c][bin]
        swap_planes_into(&scattered, c, b, bins, &mut gin_spec);
        // Crop the interior when the forward pass padded the input.
        planes_to_tensor(
            &gin_spec, b, c, n, &plan, cfg.input, cfg.input, cfg.pad, cfg.pad,
        )
    }

    fn backward_filters(&self, cfg: &ConvConfig, input: &Tensor4, grad_out: &Tensor4) -> Tensor4 {
        let _span = gcnn_trace::span("conv.fft.backward_filters");
        self.supports(cfg)
            .expect("FftConv::backward_filters: unsupported config");

        let padded_storage;
        let padded: &Tensor4 = if cfg.pad == 0 {
            input
        } else {
            let s = input.shape();
            padded_storage = gcnn_tensor::pad::pad_planes(
                input,
                s.h + 2 * cfg.pad,
                s.w + 2 * cfg.pad,
                cfg.pad,
                cfg.pad,
            );
            &padded_storage
        };
        let ieff = cfg.input + 2 * cfg.pad;
        let n = ieff.next_power_of_two();
        let plan = RfftPlan::cached(n);
        let bins = plan.spectrum_len();
        let (b, c, f) = (cfg.batch, cfg.channels, cfg.filters);

        if split_enabled() {
            return backward_filters_split(cfg, padded, grad_out, n, &plan);
        }

        let mut in_spec = workspace::take_c32(b * c * bins); // [n][c][bin]
        plane_spectra_into(padded, n, &plan, &mut in_spec);
        let mut gout_spec = workspace::take_c32(b * f * bins); // [n][f][bin]
        plane_spectra_into(grad_out, n, &plan, &mut gout_spec);

        // gw_spec[f,c] = Σ_n conj(gout_spec[f,n]) · in_spec[n,c]
        // (correlation of the input with the output gradient).
        let mut gswapped = workspace::take_c32(b * f * bins);
        swap_planes_into(&gout_spec, b, f, bins, &mut gswapped);
        let mut a_bins = workspace::take_c32(b * f * bins); // [bin][f×b]
        gather_bins_into(&gswapped, f * b, bins, &mut a_bins);
        let mut b_bins = workspace::take_c32(b * c * bins); // [bin][b×c]
        gather_bins_into(&in_spec, b * c, bins, &mut b_bins);

        let mut c_bins = workspace::take_c32(bins * f * c);
        batched_cgemm(
            true,
            false,
            f,
            c,
            b,
            bins,
            &a_bins,
            f * b,
            &b_bins,
            b * c,
            &mut c_bins,
            f * c,
        );

        let mut gw_spec = workspace::take_c32(bins * f * c); // [f][c][bin]
        scatter_bins_into(&c_bins, f * c, bins, &mut gw_spec);
        planes_to_tensor(&gw_spec, f, c, n, &plan, cfg.kernel, cfg.kernel, 0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference;
    use gcnn_tensor::init::uniform_tensor;

    fn configs() -> Vec<ConvConfig> {
        vec![
            ConvConfig::with_channels(2, 3, 8, 4, 3, 1),
            ConvConfig::with_channels(1, 1, 7, 2, 5, 1), // non-pow2 input
            ConvConfig::with_channels(3, 2, 12, 5, 6, 1),
            ConvConfig::with_channels(2, 4, 5, 2, 1, 1), // 1x1 kernel
            {
                let mut c = ConvConfig::with_channels(2, 2, 6, 3, 3, 1);
                c.pad = 1;
                c
            },
        ]
    }

    #[test]
    fn forward_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 30);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 31);
            let fast = FftConv.forward(&cfg, &x, &w);
            let slow = reference::forward_ref(&cfg, &x, &w);
            let dist = fast.rel_l2_dist(&slow).unwrap();
            assert!(dist < 1e-4, "forward mismatch at {cfg}: rel l2 {dist}");
        }
    }

    #[test]
    fn backward_data_matches_reference() {
        for cfg in configs() {
            let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 32);
            let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 33);
            let fast = FftConv.backward_data(&cfg, &g, &w);
            let slow = reference::backward_data_ref(&cfg, &g, &w);
            let dist = fast.rel_l2_dist(&slow).unwrap();
            assert!(
                dist < 1e-4,
                "backward_data mismatch at {cfg}: rel l2 {dist}"
            );
        }
    }

    #[test]
    fn backward_filters_matches_reference() {
        for cfg in configs() {
            let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 34);
            let g = uniform_tensor(cfg.output_shape(), -1.0, 1.0, 35);
            let fast = FftConv.backward_filters(&cfg, &x, &g);
            let slow = reference::backward_filters_ref(&cfg, &x, &g);
            let dist = fast.rel_l2_dist(&slow).unwrap();
            assert!(
                dist < 1e-4,
                "backward_filters mismatch at {cfg}: rel l2 {dist}"
            );
        }
    }

    #[test]
    fn rejects_stride_two() {
        let cfg = ConvConfig::with_channels(1, 1, 8, 1, 3, 2);
        assert!(matches!(
            FftConv.supports(&cfg),
            Err(Unsupported::StrideNotOne { stride: 2 })
        ));
    }

    #[test]
    #[should_panic(expected = "unsupported config")]
    fn forward_panics_on_stride_two() {
        let cfg = ConvConfig::with_channels(1, 1, 8, 1, 3, 2);
        let x = Tensor4::zeros(cfg.input_shape());
        let w = Tensor4::zeros(cfg.filter_shape());
        FftConv.forward(&cfg, &x, &w);
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let planes = 6;
        let bins = 16;
        let spec: Vec<Complex32> = (0..planes * bins)
            .map(|i| Complex32::new(i as f32, -(i as f32)))
            .collect();
        let mut gathered = vec![Complex32::ZERO; spec.len()];
        gather_bins_into(&spec, planes, bins, &mut gathered);
        let mut back = vec![Complex32::ZERO; spec.len()];
        scatter_bins_into(&gathered, planes, bins, &mut back);
        assert_eq!(back, spec);
        // Spot-check the layout: bin-major element (bin=3, plane=2).
        assert_eq!(gathered[3 * planes + 2], spec[2 * bins + 3]);
    }

    #[test]
    fn swap_planes_involution() {
        let (d0, d1, bins) = (3, 4, 8);
        let spec: Vec<Complex32> = (0..d0 * d1 * bins)
            .map(|i| Complex32::from_real(i as f32))
            .collect();
        let mut swapped = vec![Complex32::ZERO; spec.len()];
        swap_planes_into(&spec, d0, d1, bins, &mut swapped);
        let mut back = vec![Complex32::ZERO; spec.len()];
        swap_planes_into(&swapped, d1, d0, bins, &mut back);
        assert_eq!(back, spec);
    }
}
