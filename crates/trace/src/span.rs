//! RAII span timers with thread-local nesting (enabled mode).
//!
//! Each thread keeps a stack of open span paths. Opening a span pushes
//! `parent_path + "/" + name`; dropping the guard pops it and merges
//! the elapsed time into the global registry under that full path, so
//! aggregation is keyed by *call context*, not just by name (the same
//! way nvprof attributes kernel time to launch sites). Work farmed out
//! to rayon workers opens fresh root spans on those threads — cross-
//! thread parenthood is intentionally not tracked.

use crate::registry::registry;
use std::borrow::Cow;
use std::cell::RefCell;
use std::marker::PhantomData;
use std::time::Instant;

thread_local! {
    /// Stack of full paths of the spans currently open on this thread.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// Guard for one open span; records elapsed time on drop.
///
/// Guards must drop in LIFO order on the thread that created them —
/// the type is `!Send`, and letting guards outlive their parent scope
/// misattributes nesting (debug builds assert against it).
#[must_use = "a span measures nothing unless the guard lives across the timed region"]
pub struct SpanGuard {
    start: Instant,
    path: String,
    /// Pins the guard to its creating thread.
    _not_send: PhantomData<*const ()>,
}

/// Open a span named `name`, nested under the innermost open span of
/// the current thread.
pub fn span_cow(name: Cow<'static, str>) -> SpanGuard {
    let path = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name.into_owned(),
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        start: Instant::now(),
        path,
        _not_send: PhantomData,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        // Elapsed first: the stack pop and registry merge are overhead
        // that should not count against this span.
        let elapsed_ns = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        SPAN_STACK.with(|stack| {
            let popped = stack.borrow_mut().pop();
            debug_assert_eq!(
                popped.as_deref(),
                Some(self.path.as_str()),
                "span guards must drop in LIFO order"
            );
        });
        registry().record_span(&self.path, elapsed_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_nest_and_unwind() {
        {
            let _a = span_cow(Cow::Borrowed("span_test_outer"));
            let depth_inside = SPAN_STACK.with(|s| (s.borrow().len(), s.borrow().last().cloned()));
            assert_eq!(depth_inside.1.as_deref(), Some("span_test_outer"));
            {
                let _b = span_cow(Cow::Borrowed("inner"));
                let top = SPAN_STACK.with(|s| s.borrow().last().cloned());
                assert_eq!(top.as_deref(), Some("span_test_outer/inner"));
            }
        }
        let depth_after = SPAN_STACK.with(|s| s.borrow().len());
        assert_eq!(depth_after, 0, "stack must unwind fully");
    }
}
