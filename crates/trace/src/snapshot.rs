//! Serializable views of the registry: counter/gauge maps and the
//! nested span tree. These types exist in both the enabled and the
//! disabled build, so consumers (the bench binaries, `gcnn-core`'s
//! renderer) compile unconditionally.

use serde::Serialize;
use std::collections::BTreeMap;

/// Raw accumulated statistics of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of completed spans at this path.
    pub count: u64,
    /// Sum of elapsed nanoseconds.
    pub total_ns: u64,
    /// Fastest single span.
    pub min_ns: u64,
    /// Slowest single span.
    pub max_ns: u64,
}

impl SpanStat {
    /// A stat holding one observation of `ns` nanoseconds.
    pub fn one(ns: u64) -> Self {
        SpanStat {
            count: 1,
            total_ns: ns,
            min_ns: ns,
            max_ns: ns,
        }
    }

    /// Fold another observation into this stat.
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
    }
}

/// One node of the span tree. Paths are `/`-joined span names; a node
/// with `count == 0` was never closed itself and exists only because a
/// child was recorded under it.
#[derive(Debug, Clone, Serialize)]
pub struct SpanNode {
    /// Last path segment.
    pub name: String,
    /// Full `/`-joined path from the root.
    pub path: String,
    /// Completed spans at this exact path.
    pub count: u64,
    /// Total milliseconds across all completions.
    pub total_ms: f64,
    /// Mean milliseconds per completion (0 when `count == 0`).
    pub mean_ms: f64,
    /// Fastest completion in milliseconds.
    pub min_ms: f64,
    /// Slowest completion in milliseconds.
    pub max_ms: f64,
    /// Child spans, sorted by name.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first search for a node by full path.
    pub fn find(&self, path: &str) -> Option<&SpanNode> {
        if self.path == path {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(path))
    }
}

/// A point-in-time copy of the registry's contents.
#[derive(Debug, Clone, Default, Serialize)]
pub struct Snapshot {
    /// Monotonic counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins gauges by name.
    pub gauges: BTreeMap<String, f64>,
    /// Root spans (each carrying its subtree).
    pub spans: Vec<SpanNode>,
}

impl Snapshot {
    /// Counter value, 0 when the counter was never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Gauge value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Find a span node by its full `/`-joined path.
    pub fn span(&self, path: &str) -> Option<&SpanNode> {
        self.spans.iter().find_map(|s| s.find(path))
    }
}

const NS_PER_MS: f64 = 1e6;

/// Assemble the nested tree from a flat `path → stat` map, creating
/// zero-count intermediate nodes for paths that only ever appeared as
/// prefixes.
pub(crate) fn build_tree(flat: &BTreeMap<String, SpanStat>) -> Vec<SpanNode> {
    #[derive(Default)]
    struct Tmp {
        stat: Option<SpanStat>,
        children: BTreeMap<String, Tmp>,
    }

    let mut root = Tmp::default();
    for (path, stat) in flat {
        let mut node = &mut root;
        for seg in path.split('/') {
            node = node.children.entry(seg.to_string()).or_default();
        }
        node.stat = Some(*stat);
    }

    fn convert(name: &str, prefix: &str, tmp: &Tmp) -> SpanNode {
        let path = if prefix.is_empty() {
            name.to_string()
        } else {
            format!("{prefix}/{name}")
        };
        let (count, total_ms, mean_ms, min_ms, max_ms) = match tmp.stat {
            Some(s) => (
                s.count,
                s.total_ns as f64 / NS_PER_MS,
                s.total_ns as f64 / NS_PER_MS / s.count.max(1) as f64,
                s.min_ns as f64 / NS_PER_MS,
                s.max_ns as f64 / NS_PER_MS,
            ),
            None => (0, 0.0, 0.0, 0.0, 0.0),
        };
        let children = tmp
            .children
            .iter()
            .map(|(n, t)| convert(n, &path, t))
            .collect();
        SpanNode {
            name: name.to_string(),
            path,
            count,
            total_ms,
            mean_ms,
            min_ms,
            max_ms,
            children,
        }
    }

    root.children
        .iter()
        .map(|(n, t)| convert(n, "", t))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stat_record_accumulates() {
        let mut s = SpanStat::one(10);
        s.record(30);
        s.record(20);
        assert_eq!(s.count, 3);
        assert_eq!(s.total_ns, 60);
        assert_eq!(s.min_ns, 10);
        assert_eq!(s.max_ns, 30);
    }

    #[test]
    fn tree_builds_synthetic_parents() {
        let mut flat = BTreeMap::new();
        flat.insert("a/b/c".to_string(), SpanStat::one(2_000_000));
        flat.insert("a".to_string(), SpanStat::one(5_000_000));
        let tree = build_tree(&flat);
        assert_eq!(tree.len(), 1);
        let a = &tree[0];
        assert_eq!(a.path, "a");
        assert_eq!(a.count, 1);
        let b = &a.children[0];
        assert_eq!(b.path, "a/b");
        assert_eq!(b.count, 0, "synthetic parent carries no observations");
        assert_eq!(b.children[0].path, "a/b/c");
        assert!((b.children[0].total_ms - 2.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_lookups() {
        let mut flat = BTreeMap::new();
        flat.insert("x/y".to_string(), SpanStat::one(1_500_000));
        let snap = Snapshot {
            counters: [("hits".to_string(), 3u64)].into_iter().collect(),
            gauges: [("temp".to_string(), 1.5f64)].into_iter().collect(),
            spans: build_tree(&flat),
        };
        assert_eq!(snap.counter("hits"), 3);
        assert_eq!(snap.counter("absent"), 0);
        assert_eq!(snap.gauge("temp"), Some(1.5));
        assert_eq!(snap.span("x/y").unwrap().count, 1);
        assert!(snap.span("x/z").is_none());
    }
}
