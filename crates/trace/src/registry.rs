//! The live (enabled-mode) metrics registry.

use crate::snapshot::{build_tree, Snapshot, SpanStat};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Thread-safe store of counters, gauges and span statistics.
///
/// Counters and gauges are handed out as `Arc<AtomicU64>` cells, so the
/// per-increment cost after the first registration is one read-lock +
/// hash lookup (or nothing, if the caller caches the [`Counter`]
/// handle). Span stats merge under a mutex at span *end* only — span
/// bodies never hold a lock.
///
/// [`Counter`]: crate::Counter
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<HashMap<String, Arc<AtomicU64>>>,
    /// Gauges store `f64::to_bits`; last write wins.
    gauges: RwLock<HashMap<String, Arc<AtomicU64>>>,
    spans: Mutex<HashMap<String, SpanStat>>,
}

impl MetricsRegistry {
    /// A fresh, empty registry (tests; production code uses
    /// [`crate::registry`]).
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn cell(map: &RwLock<HashMap<String, Arc<AtomicU64>>>, name: &str) -> Arc<AtomicU64> {
        if let Some(c) = map.read().expect("registry lock").get(name) {
            return Arc::clone(c);
        }
        let mut w = map.write().expect("registry lock");
        Arc::clone(w.entry(name.to_string()).or_default())
    }

    /// The atomic cell behind a counter, registering it on first use.
    pub fn counter_cell(&self, name: &str) -> Arc<AtomicU64> {
        Self::cell(&self.counters, name)
    }

    /// Add `delta` to a counter.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.counter_cell(name).fetch_add(delta, Ordering::Relaxed);
    }

    /// Set a gauge to `value` (last write wins).
    pub fn gauge_set(&self, name: &str, value: f64) {
        Self::cell(&self.gauges, name).store(value.to_bits(), Ordering::Relaxed);
    }

    /// Merge one completed span observation into the stats for `path`.
    pub fn record_span(&self, path: &str, elapsed_ns: u64) {
        let mut spans = self.spans.lock().expect("registry lock");
        match spans.get_mut(path) {
            Some(stat) => stat.record(elapsed_ns),
            None => {
                spans.insert(path.to_string(), SpanStat::one(elapsed_ns));
            }
        }
    }

    /// Copy out every metric. Counters that were registered but never
    /// incremented appear with value 0.
    pub fn snapshot(&self) -> Snapshot {
        let counters: BTreeMap<String, u64> = self
            .counters
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect();
        let gauges: BTreeMap<String, f64> = self
            .gauges
            .read()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed))))
            .collect();
        let flat: BTreeMap<String, SpanStat> = self
            .spans
            .lock()
            .expect("registry lock")
            .iter()
            .map(|(k, v)| (k.clone(), *v))
            .collect();
        Snapshot {
            counters,
            gauges,
            spans: build_tree(&flat),
        }
    }

    /// Zero every counter and drop all gauges and span stats. Counters
    /// are zeroed *in place* rather than dropped: hot paths cache their
    /// [`Counter`] handles in statics, and those handles must keep
    /// feeding the same cells the next snapshot reads.
    ///
    /// [`Counter`]: crate::Counter
    pub fn reset(&self) {
        for cell in self.counters.read().expect("registry lock").values() {
            cell.store(0, Ordering::Relaxed);
        }
        self.gauges.write().expect("registry lock").clear();
        self.spans.lock().expect("registry lock").clear();
    }
}

/// The process-wide registry every instrumentation site reports to.
pub fn registry() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_registry_counts_and_resets() {
        let r = MetricsRegistry::new();
        r.counter_add("c", 2);
        r.counter_add("c", 3);
        r.gauge_set("g", 2.5);
        r.gauge_set("g", 7.5);
        r.record_span("s", 1_000_000);
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.gauge("g"), Some(7.5));
        assert_eq!(snap.span("s").unwrap().count, 1);

        r.reset();
        let snap = r.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert_eq!(snap.gauge("g"), None);
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn reset_keeps_cached_counter_handles_live() {
        let r = MetricsRegistry::new();
        let handle = r.counter_cell("cached");
        handle.fetch_add(5, Ordering::Relaxed);
        r.reset();
        handle.fetch_add(2, Ordering::Relaxed);
        assert_eq!(
            r.snapshot().counter("cached"),
            2,
            "increments through a pre-reset handle must stay visible"
        );
    }

    #[test]
    fn counter_cell_is_shared() {
        let r = MetricsRegistry::new();
        let a = r.counter_cell("shared");
        let b = r.counter_cell("shared");
        a.fetch_add(4, Ordering::Relaxed);
        assert_eq!(b.load(Ordering::Relaxed), 4);
    }
}
