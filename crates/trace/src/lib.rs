//! # gcnn-trace
//!
//! Lightweight observability for the gcnn workspace: nested span
//! timers, monotonic counters, gauges and a process-wide
//! [`MetricsRegistry`], mirroring the paper's methodology of per-layer
//! runtime breakdowns and hotspot kernel metrics — but pointed at this
//! reproduction's *own* hot paths (arena GEMM, plan-cached FFT, the
//! three convolution strategies).
//!
//! ## Feature flag
//!
//! The whole crate sits behind the `enabled` feature (on by default).
//! With `--no-default-features` every entry point below still exists
//! but compiles to a no-op: spans take no timestamps, counters touch no
//! atomics, [`snapshot`] returns an empty [`Snapshot`]. Consumer crates
//! expose their own `trace` feature forwarding to `gcnn-trace/enabled`,
//! so `cargo test --no-default-features` proves the disabled mode
//! compiles everywhere.
//!
//! ## Use
//!
//! Span and counter names follow the `subsystem.verb` convention
//! enforced by `gcnn-audit` (lowercase dot-separated segments, e.g.
//! `gemm.sgemm`, `tensor.im2col`, `autotune.cache.hits`):
//!
//! ```
//! let _outer = gcnn_trace::span("network.layer");
//! {
//!     // aggregates as "network.layer/gemm.sgemm"
//!     let _inner = gcnn_trace::span("gemm.sgemm");
//!     gcnn_trace::counter_add("gemm.calls", 1);
//! }
//! let snap = gcnn_trace::snapshot();
//! if gcnn_trace::enabled() {
//!     assert!(snap.counter("gemm.calls") >= 1);
//! }
//! ```

#![forbid(unsafe_code)]

mod snapshot;

pub use snapshot::{Snapshot, SpanNode, SpanStat};

#[cfg(feature = "enabled")]
mod registry;
#[cfg(feature = "enabled")]
mod span;

#[cfg(feature = "enabled")]
pub use registry::{registry, MetricsRegistry};

/// Whether the `enabled` feature was compiled in.
#[inline]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// A cached handle to one counter's atomic cell. Cloning is cheap;
/// incrementing through a handle skips the registry lookup entirely,
/// which is what the hot paths (workspace checkouts, GEMM tiles) use.
/// In disabled mode the handle is a ZST and every method is a no-op.
#[derive(Debug, Clone)]
pub struct Counter {
    #[cfg(feature = "enabled")]
    cell: std::sync::Arc<std::sync::atomic::AtomicU64>,
}

impl Counter {
    /// Add `delta`.
    #[inline]
    pub fn add(&self, delta: u64) {
        #[cfg(feature = "enabled")]
        self.cell
            .fetch_add(delta, std::sync::atomic::Ordering::Relaxed);
        #[cfg(not(feature = "enabled"))]
        let _ = delta;
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (always 0 in disabled mode).
    #[inline]
    pub fn get(&self) -> u64 {
        #[cfg(feature = "enabled")]
        {
            self.cell.load(std::sync::atomic::Ordering::Relaxed)
        }
        #[cfg(not(feature = "enabled"))]
        {
            0
        }
    }
}

/// Obtain a [`Counter`] handle, registering the counter on first use.
#[inline]
pub fn counter(name: &str) -> Counter {
    #[cfg(feature = "enabled")]
    {
        Counter {
            cell: registry().counter_cell(name),
        }
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        Counter {}
    }
}

/// Add `delta` to the named counter.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    #[cfg(feature = "enabled")]
    registry().counter_add(name, delta);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, delta);
}

/// Add 1 to the named counter.
#[inline]
pub fn counter_inc(name: &str) {
    counter_add(name, 1);
}

/// Set the named gauge (last write wins).
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    #[cfg(feature = "enabled")]
    registry().gauge_set(name, value);
    #[cfg(not(feature = "enabled"))]
    let _ = (name, value);
}

/// RAII guard for one open span; see [`span`].
#[cfg(feature = "enabled")]
pub use span::SpanGuard;

/// Inert stand-in for [`SpanGuard`] in disabled builds.
#[cfg(not(feature = "enabled"))]
#[must_use = "a span measures nothing unless the guard lives across the timed region"]
pub struct SpanGuard {
    _private: (),
}

/// Open a span with a static name, nested under the innermost open
/// span of the current thread. Time is recorded when the guard drops.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        span::span_cow(std::borrow::Cow::Borrowed(name))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = name;
        SpanGuard { _private: () }
    }
}

/// Open a span whose name is built lazily — the closure never runs in
/// disabled mode, so dynamic names (per-layer indices, shapes) cost
/// nothing when tracing is off.
#[inline]
pub fn span_owned<F: FnOnce() -> String>(make_name: F) -> SpanGuard {
    #[cfg(feature = "enabled")]
    {
        span::span_cow(std::borrow::Cow::Owned(make_name()))
    }
    #[cfg(not(feature = "enabled"))]
    {
        let _ = make_name;
        SpanGuard { _private: () }
    }
}

/// Snapshot the global registry (empty in disabled mode).
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "enabled")]
    {
        registry().snapshot()
    }
    #[cfg(not(feature = "enabled"))]
    {
        Snapshot::default()
    }
}

/// Clear the global registry (no-op in disabled mode). Reset only
/// between workloads — see [`MetricsRegistry::reset`].
pub fn reset() {
    #[cfg(feature = "enabled")]
    registry().reset();
}

#[cfg(all(test, feature = "enabled"))]
mod enabled_tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn nested_span_timing_is_monotonic() {
        {
            let _outer = span("mono_outer");
            for _ in 0..3 {
                let _inner = span("step");
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        let snap = snapshot();
        let outer = snap.span("mono_outer").expect("outer recorded");
        let inner = snap.span("mono_outer/step").expect("inner recorded");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 3);
        // The parent encloses its children, so its total can never be
        // smaller; and per-span stats must order min ≤ mean ≤ max.
        assert!(
            outer.total_ms >= inner.total_ms,
            "outer {} < inner {}",
            outer.total_ms,
            inner.total_ms
        );
        assert!(inner.min_ms <= inner.mean_ms && inner.mean_ms <= inner.max_ms);
        assert!(inner.min_ms > 0.0, "sleep spans must measure > 0");
    }

    #[test]
    fn counters_are_atomic_under_par_iter() {
        use rayon::prelude::*;
        const N: usize = 10_000;
        let handle = counter("atomicity.handle");
        (0..N).into_par_iter().for_each(|i| {
            counter_add("atomicity.named", 1);
            if i % 2 == 0 {
                handle.add(2);
            }
        });
        let snap = snapshot();
        assert_eq!(snap.counter("atomicity.named"), N as u64);
        assert_eq!(handle.get(), N as u64); // N/2 increments of 2
        assert_eq!(snap.counter("atomicity.handle"), N as u64);
    }

    #[test]
    fn spans_on_worker_threads_root_independently() {
        use rayon::prelude::*;
        let _outer = span("root_outer");
        (0..64usize).into_par_iter().for_each(|_| {
            // Worker threads have their own stacks; these must not nest
            // under `root_outer` (they may run on the caller thread too,
            // where they do nest — both paths are valid aggregates).
            let _w = span("worker_span");
        });
        drop(_outer);
        let snap = snapshot();
        let rooted = snap.span("worker_span").map_or(0, |n| n.count);
        let nested = snap.span("root_outer/worker_span").map_or(0, |n| n.count);
        assert_eq!(rooted + nested, 64);
    }

    #[test]
    fn gauge_last_write_wins() {
        gauge_set("gauge.test", 1.0);
        gauge_set("gauge.test", -3.25);
        assert_eq!(snapshot().gauge("gauge.test"), Some(-3.25));
    }

    #[test]
    fn span_owned_builds_dynamic_names() {
        {
            let _g = span_owned(|| format!("dyn{}", 7));
        }
        assert!(snapshot().span("dyn7").is_some());
    }
}

#[cfg(all(test, not(feature = "enabled")))]
mod disabled_tests {
    use super::*;

    #[test]
    fn everything_is_a_no_op() {
        assert!(!enabled());
        counter_add("disabled.c", 5);
        counter("disabled.h").add(7);
        gauge_set("disabled.g", 1.0);
        {
            let _s = span("disabled.span");
            let _o = span_owned(|| unreachable!("name closure must not run when disabled"));
        }
        reset();
        let snap = snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.gauges.is_empty());
        assert!(snap.spans.is_empty());
        assert_eq!(counter("disabled.h").get(), 0);
    }
}
