//! # gcnn-core
//!
//! The paper's primary contribution, as a library: the performance
//! analysis harness of *Performance Analysis of GPU-based Convolutional
//! Neural Networks* (Li et al., ICPP 2016).
//!
//! The paper's methodology (§III-B) has two tiers, both implemented
//! here over the substrates in the sibling crates:
//!
//! **High-level workload profiling**
//! * [`sweep`] — the five parameter sweeps around the base 5-tuple
//!   `(64, 128, 64, 11, 1)` (Fig. 3/5 x-axes).
//! * [`compare`] — head-to-head runtime comparison of the seven
//!   implementations (Fig. 3), honoring each one's shape restrictions.
//! * `gcnn-models::breakdown` — hotspot-layer analysis (Fig. 2).
//!
//! **Detailed performance profiling**
//! * [`hotspot`] — hotspot kernels inside each implementation (Fig. 4).
//! * [`memprofile`] — peak GPU memory over the sweeps (Fig. 5).
//! * [`gpuprofile`] — nvprof-style metric profiles of the top kernels
//!   over the Table I configurations (Fig. 6).
//! * [`transfer`] — CPU↔GPU transfer overhead (Fig. 7).
//!
//! Plus [`advisor`] — the paper's stated goal ("assist practitioners
//! identifying the implementations that best serve their CNN computation
//! needs in different scenarios") as an executable decision procedure —
//! and [`report`], plain-text/JSON renderers for every table.

#![forbid(unsafe_code)]

pub mod advisor;
pub mod compare;
pub mod gpuprofile;
pub mod hotspot;
pub mod memprofile;
pub mod model_compare;
pub mod report;
pub mod sweep;
pub mod transfer;

pub use advisor::{advise, advise_with_cache, Advice, Scenario};
pub use compare::{runtime_comparison, ComparisonCell, ComparisonTable};
pub use gpuprofile::{gpu_profile, GpuProfileRow};
pub use hotspot::{hotspot_kernels, HotspotReport};
pub use memprofile::memory_comparison;
pub use model_compare::{compare_model, ModelComparison};
pub use sweep::{paper_sweeps, Sweep, SweepAxis};
pub use transfer::{transfer_overheads, TransferRow};
