//! Fig. 6: nvprof-style metric profiles of the top kernels over the
//! Table I configurations.

use gcnn_conv::{table1_configs, ConvConfig, TABLE1_NAMES};
use gcnn_frameworks::{all_implementations, ConvImplementation};
use gcnn_gpusim::{DeviceSpec, KernelMetrics};
use serde::{Deserialize, Serialize};

/// How many top kernels enter the weighted aggregate (the paper: "top
/// kernels of each implementation").
pub const TOP_KERNELS: usize = 4;

/// One (implementation × configuration) profile row.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GpuProfileRow {
    /// Implementation name.
    pub implementation: String,
    /// Table I layer name ("Conv1" …).
    pub layer: String,
    /// Runtime-weighted top-kernel metrics (None when the shape is
    /// unsupported).
    pub metrics: Option<KernelMetrics>,
}

/// Profile one implementation at one configuration.
pub fn profile_one(
    imp: &dyn ConvImplementation,
    cfg: &ConvConfig,
    dev: &DeviceSpec,
) -> Option<KernelMetrics> {
    imp.supports(cfg).ok()?;
    let report = imp.plan(cfg).execute(dev, 1).ok()?;
    Some(report.weighted_metrics(TOP_KERNELS))
}

/// The full Fig. 6 grid: all implementations × Table I layers.
pub fn gpu_profile(dev: &DeviceSpec) -> Vec<GpuProfileRow> {
    let mut rows = Vec::new();
    for imp in all_implementations() {
        for (cfg, name) in table1_configs().iter().zip(TABLE1_NAMES) {
            rows.push(GpuProfileRow {
                implementation: imp.name().to_string(),
                layer: name.to_string(),
                metrics: profile_one(imp.as_ref(), cfg, dev),
            });
        }
    }
    rows
}

/// Select the rows of one implementation.
pub fn rows_of<'a>(rows: &'a [GpuProfileRow], imp: &str) -> Vec<&'a GpuProfileRow> {
    rows.iter().filter(|r| r.implementation == imp).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<GpuProfileRow> {
        gpu_profile(&DeviceSpec::k40c())
    }

    #[test]
    fn grid_covers_all_pairs() {
        let rows = grid();
        assert_eq!(rows.len(), 7 * 5);
        // Table I is all stride 1, so everything is supported.
        assert!(rows.iter().all(|r| r.metrics.is_some()));
    }

    #[test]
    fn most_implementations_below_30_percent_occupancy() {
        // Paper §V-C-1: "most implementations have relatively low
        // achieved occupancy (less than 30%)" — Theano-fft is the
        // documented exception.
        let rows = grid();
        for r in &rows {
            let m = r.metrics.as_ref().unwrap();
            if r.implementation != "Theano-fft" {
                assert!(
                    m.achieved_occupancy < 45.0,
                    "{} {}: occupancy {}",
                    r.implementation,
                    r.layer,
                    m.achieved_occupancy
                );
            }
        }
    }

    #[test]
    fn cc2_occupancy_band() {
        // Paper: cuda-convnet2 achieved occupancy 14–22 %.
        for r in rows_of(&grid(), "cuda-convnet2") {
            let occ = r.metrics.as_ref().unwrap().achieved_occupancy;
            assert!((10.0..=28.0).contains(&occ), "{}: {occ}", r.layer);
        }
    }

    #[test]
    fn theano_fft_higher_occupancy_worse_speed() {
        // Paper: Theano-fft 39–59 % occupancy yet the worst runtime —
        // "a higher occupancy does not mean a better performance".
        let rows = grid();
        for layer in TABLE1_NAMES {
            let of = |imp: &str| {
                rows.iter()
                    .find(|r| r.implementation == imp && r.layer == layer)
                    .and_then(|r| r.metrics.as_ref())
                    .cloned()
                    .unwrap()
            };
            let theano = of("Theano-fft");
            let fbfft = of("fbfft");
            assert!(
                theano.achieved_occupancy > fbfft.achieved_occupancy,
                "{layer}: theano occ {} ≤ fbfft {}",
                theano.achieved_occupancy,
                fbfft.achieved_occupancy
            );
            assert!(
                theano.runtime_ms > fbfft.runtime_ms,
                "{layer}: theano faster than fbfft?"
            );
        }
    }

    #[test]
    fn wee_high_except_theano_fft() {
        // Paper §V-C-4: WEE > 97 % everywhere except Theano-fft's
        // 66–81 %.
        for r in grid() {
            let m = r.metrics.as_ref().unwrap();
            if r.implementation == "Theano-fft" {
                assert!(
                    (60.0..=85.0).contains(&m.warp_execution_efficiency),
                    "{}: wee {}",
                    r.layer,
                    m.warp_execution_efficiency
                );
            } else {
                assert!(
                    m.warp_execution_efficiency > 95.0,
                    "{} {}: wee {}",
                    r.implementation,
                    r.layer,
                    m.warp_execution_efficiency
                );
            }
        }
    }

    #[test]
    fn global_efficiency_low_across_the_board() {
        // Paper §V-C-2: "Caffe, Torch-cunn, Theano-CorrMM and Theano-fft
        // have very low global memory load efficiencies"; cuDNN's
        // smem-resident kernels drag its aggregate down too.
        // cuda-convnet2's CHWN batch-major loads are the efficient
        // exception ("cuda-convnet2 also has efficient metric profiling
        // results").
        for r in grid() {
            let m = r.metrics.as_ref().unwrap();
            if r.implementation == "cuda-convnet2" {
                assert!(
                    m.gld_efficiency > 50.0,
                    "{}: gld {}",
                    r.layer,
                    m.gld_efficiency
                );
            } else {
                assert!(
                    m.gld_efficiency < 30.0,
                    "{} {}: gld {}",
                    r.implementation,
                    r.layer,
                    m.gld_efficiency
                );
                assert!(
                    m.gst_efficiency < 65.0,
                    "{} {}: gst {}",
                    r.implementation,
                    r.layer,
                    m.gst_efficiency
                );
            }
        }
    }

    #[test]
    fn shared_efficiency_contrast() {
        // Paper §V-C-3: Theano-fft 8–20 %; cuDNN > 100 % (broadcasts).
        let rows = grid();
        for r in rows_of(&rows, "Theano-fft") {
            let s = r.metrics.as_ref().unwrap().shared_efficiency;
            assert!((4.0..=25.0).contains(&s), "{}: shared {s}", r.layer);
        }
        for r in rows_of(&rows, "cuDNN") {
            let s = r.metrics.as_ref().unwrap().shared_efficiency;
            assert!(s > 100.0, "{}: shared {s}", r.layer);
        }
    }

    #[test]
    fn fastest_per_strategy_matches_paper() {
        // Fig. 6 runtime panel: "cuDNN is the fastest implementation in
        // unrolling-based convolution and fbfft is the fastest one in
        // FFT-based convolution."
        let rows = grid();
        for layer in TABLE1_NAMES {
            let t = |imp: &str| {
                rows.iter()
                    .find(|r| r.implementation == imp && r.layer == layer)
                    .and_then(|r| r.metrics.as_ref())
                    .map(|m| m.runtime_ms)
                    .unwrap()
            };
            for unroller in ["Caffe", "Torch-cunn", "Theano-CorrMM"] {
                assert!(t("cuDNN") < t(unroller), "{layer}: cuDNN vs {unroller}");
            }
            assert!(t("fbfft") < t("Theano-fft"), "{layer}: fbfft vs Theano-fft");
        }
    }
}
