//! Fig. 5: peak GPU memory comparison.

use crate::compare::ComparisonTable;
use crate::sweep::Sweep;
use gcnn_conv::ConvConfig;
use gcnn_frameworks::{all_implementations, ConvImplementation};
use serde::{Deserialize, Serialize};

/// One implementation's peak memory at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MemoryCell {
    /// Peak device bytes.
    Bytes(u64),
    /// Shape rejected.
    Unsupported(String),
}

impl MemoryCell {
    /// Peak megabytes, if supported.
    pub fn mb(&self) -> Option<f64> {
        match self {
            MemoryCell::Bytes(b) => Some(*b as f64 / (1024.0 * 1024.0)),
            MemoryCell::Unsupported(_) => None,
        }
    }
}

/// Memory table over a sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MemoryTable {
    /// Axis label.
    pub axis: String,
    /// Sweep values.
    pub values: Vec<usize>,
    /// Implementation names (column order).
    pub implementations: Vec<String>,
    /// `cells[point][impl]`.
    pub cells: Vec<Vec<MemoryCell>>,
}

impl MemoryTable {
    /// Peak MB of a named implementation at a point.
    pub fn mb_of(&self, point: usize, name: &str) -> Option<f64> {
        let idx = self.implementations.iter().position(|n| n == name)?;
        self.cells[point][idx].mb()
    }

    /// The most memory-frugal implementation at a point.
    pub fn most_frugal_at(&self, point: usize) -> Option<(&str, f64)> {
        self.cells[point]
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.mb().map(|m| (self.implementations[i].as_str(), m)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }
}

/// Peak memory of one implementation at one configuration.
pub fn peak_memory(imp: &dyn ConvImplementation, cfg: &ConvConfig) -> MemoryCell {
    match imp.supports(cfg) {
        Err(e) => MemoryCell::Unsupported(e.to_string()),
        Ok(()) => MemoryCell::Bytes(imp.plan(cfg).peak_bytes()),
    }
}

/// Run one sweep's memory comparison (the device doesn't matter: peak
/// allocation is a property of the plan; the paper's `nvidia-smi`
/// methodology measures the same thing).
pub fn memory_comparison(sweep: &Sweep) -> MemoryTable {
    let impls = all_implementations();
    let mut cells = Vec::with_capacity(sweep.values.len());
    for (_, cfg) in sweep.configs() {
        cells.push(
            impls
                .iter()
                .map(|imp| peak_memory(imp.as_ref(), &cfg))
                .collect(),
        );
    }
    MemoryTable {
        axis: sweep.axis.label().to_string(),
        values: sweep.values.clone(),
        implementations: impls.iter().map(|i| i.name().to_string()).collect(),
        cells,
    }
}

/// Convenience: does the runtime table agree with this memory table on
/// the implementation set? (Used by report rendering.)
pub fn columns_match(mem: &MemoryTable, time: &ComparisonTable) -> bool {
    mem.implementations == time.implementations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{paper_sweeps, SweepAxis};

    fn table_for(axis: SweepAxis) -> MemoryTable {
        let sweep = paper_sweeps().into_iter().find(|s| s.axis == axis).unwrap();
        memory_comparison(&sweep)
    }

    #[test]
    fn cc2_most_frugal_everywhere() {
        // Paper Fig. 5: "cuda-convnet2 is the most memory efficient one
        // in all scenarios".
        for axis in [SweepAxis::Batch, SweepAxis::Input, SweepAxis::Kernel] {
            let t = table_for(axis);
            for p in 0..t.values.len() {
                if let Some((name, _)) = t.most_frugal_at(p) {
                    assert_eq!(name, "cuda-convnet2", "{:?} point {p}", axis);
                }
            }
        }
    }

    #[test]
    fn fbfft_highest_on_batch_sweep() {
        let t = table_for(SweepAxis::Batch);
        for p in 0..t.values.len() {
            let fb = t.mb_of(p, "fbfft").unwrap();
            for other in [
                "Caffe",
                "cuDNN",
                "Torch-cunn",
                "Theano-CorrMM",
                "cuda-convnet2",
                "Theano-fft",
            ] {
                if let Some(m) = t.mb_of(p, other) {
                    assert!(fb > m, "batch {}: fbfft {fb} ≤ {other} {m}", t.values[p]);
                }
            }
        }
    }

    #[test]
    fn memory_bands_match_paper_order_of_magnitude() {
        // Paper Fig. 5 ranges: cc2 125–2076 MB, Torch 170–2093 MB,
        // Caffe 136–3809 MB, fbfft 1632–10866 MB across all sweeps.
        let mut min_cc2 = f64::MAX;
        let mut max_cc2: f64 = 0.0;
        let mut min_fb = f64::MAX;
        let mut max_fb: f64 = 0.0;
        for sweep in paper_sweeps() {
            let t = memory_comparison(&sweep);
            for p in 0..t.values.len() {
                if let Some(m) = t.mb_of(p, "cuda-convnet2") {
                    min_cc2 = min_cc2.min(m);
                    max_cc2 = max_cc2.max(m);
                }
                if let Some(m) = t.mb_of(p, "fbfft") {
                    min_fb = min_fb.min(m);
                    max_fb = max_fb.max(m);
                }
            }
        }
        assert!((100.0..400.0).contains(&min_cc2), "cc2 min {min_cc2}");
        assert!((1000.0..4000.0).contains(&max_cc2), "cc2 max {max_cc2}");
        // fbfft's floor diverges from the paper's 1632 MB (their build
        // pre-allocates pooled cuFFT buffers we don't model; see
        // EXPERIMENTS.md) but stays the per-sweep maximum everywhere and
        // hits the paper's ~10 GB ceiling.
        assert!(min_fb > min_cc2, "fbfft min {min_fb} vs cc2 {min_cc2}");
        assert!(max_fb > 6000.0, "fbfft max {max_fb}");
    }

    #[test]
    fn fbfft_memory_fluctuates_over_input_sweep() {
        // Paper Fig. 5b: "dramatic fluctuations in memory usage of fbfft
        // over certain input size" — power-of-two jumps make the curve
        // non-monotone in ratio terms: i=128 needs N=128 but i=144 needs
        // N=256.
        let t = table_for(SweepAxis::Input);
        let at = |i: usize| {
            let p = t.values.iter().position(|&v| v == i).unwrap();
            t.mb_of(p, "fbfft").unwrap()
        };
        let jump = at(144) / at(128);
        assert!(jump > 2.0, "expected pow2 jump, got ×{jump:.2}");
        // Between 144 and 256 the transform stays at 256: flat spectra.
        let ratio = at(256) / at(160);
        assert!(
            ratio < 2.0,
            "spectra should be flat within a pow2 band: ×{ratio:.2}"
        );
    }

    #[test]
    fn unsupported_cells_marked() {
        let sweep = Sweep {
            axis: SweepAxis::Stride,
            values: vec![2],
        };
        let t = memory_comparison(&sweep);
        let idx = t.implementations.iter().position(|n| n == "fbfft").unwrap();
        assert!(matches!(t.cells[0][idx], MemoryCell::Unsupported(_)));
    }

    use crate::sweep::Sweep;
}
