//! Plain-text table rendering for the experiment binaries.

use crate::compare::{ComparisonCell, ComparisonTable};
use crate::memprofile::MemoryTable;

/// Render a value grid as a fixed-width text table.
pub fn text_table(title: &str, header: &[String], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Render a runtime comparison table (Fig. 3 panel).
pub fn render_comparison(t: &ComparisonTable) -> String {
    let mut header = vec![t.axis.clone()];
    header.extend(t.implementations.iter().cloned());
    let rows: Vec<Vec<String>> = t
        .values
        .iter()
        .zip(&t.cells)
        .map(|(v, cells)| {
            let mut row = vec![v.to_string()];
            row.extend(cells.iter().map(|c| match c {
                ComparisonCell::Time(ms) => format!("{ms:.1}"),
                ComparisonCell::Unsupported(_) => "—".to_string(),
                ComparisonCell::OutOfMemory => "OOM".to_string(),
            }));
            row
        })
        .collect();
    text_table(
        &format!("runtime (ms per training iteration) vs {}", t.axis),
        &header,
        &rows,
    )
}

/// Render a memory comparison table (Fig. 5 panel).
pub fn render_memory(t: &MemoryTable) -> String {
    let mut header = vec![t.axis.clone()];
    header.extend(t.implementations.iter().cloned());
    let rows: Vec<Vec<String>> = t
        .values
        .iter()
        .zip(&t.cells)
        .map(|(v, cells)| {
            let mut row = vec![v.to_string()];
            row.extend(cells.iter().map(|c| match c.mb() {
                Some(mb) => format!("{mb:.0}"),
                None => "—".to_string(),
            }));
            row
        })
        .collect();
    text_table(
        &format!("peak GPU memory (MB) vs {}", t.axis),
        &header,
        &rows,
    )
}

/// Render a [`gcnn_trace::Snapshot`] as an indented span tree followed
/// by the counter and gauge tables. Empty sections are omitted, so the
/// disabled-trace build renders an empty string.
pub fn render_trace(snap: &gcnn_trace::Snapshot) -> String {
    fn walk(node: &gcnn_trace::SpanNode, depth: usize, out: &mut String) {
        out.push_str(&format!(
            "{:indent$}{:<32} {:>8}  {:>10.3} ms total  {:>9.3} ms mean\n",
            "",
            node.name,
            node.count,
            node.total_ms,
            node.mean_ms,
            indent = 2 * depth,
        ));
        for child in &node.children {
            walk(child, depth + 1, out);
        }
    }
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (name, count, total, mean):\n");
        for root in &snap.spans {
            walk(root, 1, &mut out);
        }
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            out.push_str(&format!("  {name:<40} {value:>12}\n"));
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snap.gauges {
            out.push_str(&format!("  {name:<40} {value:>12.3}\n"));
        }
    }
    out
}

/// Percentage formatter used across the binaries.
pub fn pct(f: f64) -> String {
    let v = 100.0 * f;
    // Avoid "-0.0%" from floating-point negative zeros.
    format!("{:.1}%", if v.abs() < 5e-2 { 0.0 } else { v })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let s = text_table(
            "t",
            &["a".into(), "long".into()],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "t");
        assert!(lines[1].contains("a") && lines[1].contains("long"));
        // All data lines share the same width.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.875), "87.5%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn render_trace_sections() {
        let empty = gcnn_trace::Snapshot::default();
        assert_eq!(render_trace(&empty), "");

        let snap = gcnn_trace::Snapshot {
            counters: [("fft.plan_cache.hits".to_string(), 7u64)]
                .into_iter()
                .collect(),
            gauges: [("steady.fresh_allocs".to_string(), 0.0f64)]
                .into_iter()
                .collect(),
            spans: vec![gcnn_trace::SpanNode {
                name: "sgemm".into(),
                path: "sgemm".into(),
                count: 4,
                total_ms: 8.0,
                mean_ms: 2.0,
                min_ms: 1.0,
                max_ms: 3.0,
                children: Vec::new(),
            }],
        };
        let s = render_trace(&snap);
        assert!(s.contains("sgemm"));
        assert!(s.contains("fft.plan_cache.hits"));
        assert!(s.contains("steady.fresh_allocs"));
    }

    #[test]
    fn render_comparison_smoke() {
        use crate::sweep::{Sweep, SweepAxis};
        let sweep = Sweep {
            axis: SweepAxis::Stride,
            values: vec![1, 2],
        };
        let t = crate::compare::runtime_comparison(&sweep, &gcnn_gpusim::DeviceSpec::k40c());
        let s = render_comparison(&t);
        assert!(s.contains("fbfft"));
        assert!(
            s.contains("—"),
            "stride-2 FFT cells should render as dashes:\n{s}"
        );
    }
}
