//! Fig. 4: hotspot kernels inside each implementation.

use gcnn_conv::ConvConfig;
use gcnn_frameworks::{all_implementations, ConvImplementation};
use gcnn_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// One implementation's kernel-share breakdown.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HotspotReport {
    /// Implementation name.
    pub implementation: String,
    /// `(kernel name, share of kernel time)` sorted descending; shares
    /// sum to 1 over kernels (transfers are reported separately, as the
    /// paper's Theano-fft panel does).
    pub kernel_shares: Vec<(String, f64)>,
    /// Visible transfer share of the total (kernels + transfers).
    pub transfer_share: f64,
}

impl HotspotReport {
    /// Share of a named kernel (0 when absent).
    pub fn share(&self, kernel: &str) -> f64 {
        self.kernel_shares
            .iter()
            .find(|(n, _)| n == kernel)
            .map(|(_, s)| *s)
            .unwrap_or(0.0)
    }

    /// The dominant kernel.
    pub fn top(&self) -> Option<&(String, f64)> {
        self.kernel_shares.first()
    }
}

/// Profile one implementation's hotspot kernels at a configuration.
///
/// The paper uses the representative configuration `(64, 128, 64, 11,
/// 1)` for this analysis (§V-A): *"For different configurations, the
/// convolutional layer in the same implementation shows the similar
/// hotspot kernel results."*
pub fn hotspot_kernels(
    imp: &dyn ConvImplementation,
    cfg: &ConvConfig,
    dev: &DeviceSpec,
) -> Option<HotspotReport> {
    imp.supports(cfg).ok()?;
    let report = imp.plan(cfg).execute(dev, 1).ok()?;
    let kernel_shares = report
        .kernels
        .iter()
        .map(|k| (k.name.clone(), k.total_ms / report.kernel_ms))
        .collect();
    Some(HotspotReport {
        implementation: imp.name().to_string(),
        kernel_shares,
        transfer_share: report.transfer_fraction(),
    })
}

/// Hotspot reports for all seven implementations at the representative
/// configuration.
pub fn all_hotspots(cfg: &ConvConfig, dev: &DeviceSpec) -> Vec<HotspotReport> {
    all_implementations()
        .iter()
        .filter_map(|imp| hotspot_kernels(imp.as_ref(), cfg, dev))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_frameworks::implementation_by_name;

    fn report_for(name: &str) -> HotspotReport {
        let imp = implementation_by_name(name).unwrap();
        hotspot_kernels(imp.as_ref(), &ConvConfig::paper_base(), &DeviceSpec::k40c()).unwrap()
    }

    #[test]
    fn gemm_shares_match_figure_4() {
        // Paper Fig. 4a–c: GEMM = 87 % / 83 % / 80 % of Caffe /
        // Torch-cunn / Theano-CorrMM kernel time.
        for (name, lo, hi) in [
            ("Caffe", 0.78, 0.95),
            ("Torch-cunn", 0.74, 0.93),
            ("Theano-CorrMM", 0.65, 0.90),
        ] {
            let share = report_for(name).share("sgemm");
            assert!(
                (lo..=hi).contains(&share),
                "{name}: GEMM share {share:.3} outside [{lo}, {hi}]"
            );
        }
    }

    #[test]
    fn ordering_caffe_torch_corrmm() {
        // The paper's 87 > 83 > 80 ordering.
        let caffe = report_for("Caffe").share("sgemm");
        let torch = report_for("Torch-cunn").share("sgemm");
        let corrmm = report_for("Theano-CorrMM").share("sgemm");
        assert!(caffe > torch, "caffe {caffe} ≤ torch {torch}");
        assert!(torch > corrmm, "torch {torch} ≤ corrmm {corrmm}");
    }

    #[test]
    fn cudnn_top_kernels_are_the_paper_pair() {
        // Fig. 4d: wgrad_alg0_engine and cuDNN_gemm dominate.
        let r = report_for("cuDNN");
        let combined = r.share("cuDNN_gemm") + r.share("wgrad_alg0_engine");
        assert!(combined > 0.85, "cuDNN fused kernels {combined}");
    }

    #[test]
    fn cc2_three_direct_kernels() {
        // Fig. 4e: filterActs / img_acts / weight_acts carry everything.
        let r = report_for("cuda-convnet2");
        let sum = r.share("filterActs_YxX_color")
            + r.share("img_acts_color")
            + r.share("conv_weight_acts_c_preload");
        assert!((sum - 1.0).abs() < 1e-9, "direct kernels {sum}");
    }

    #[test]
    fn fbfft_four_stage_pipeline() {
        // Fig. 4f: FFT + transpose + Cgemm + inverse FFT.
        let r = report_for("fbfft");
        for k in [
            "decimateInFrequency",
            "Transpose",
            "Cgemm",
            "decimateInFrequencyInverse",
        ] {
            assert!(r.share(k) > 0.05, "{k}: {}", r.share(k));
        }
    }

    #[test]
    fn theano_fft_dominated_by_data_preparation() {
        // Fig. 4g: "most of the runtime is spent on data preparation and
        // data transfer".
        let r = report_for("Theano-fft");
        let prep = r.share("data_preparation") + r.share("transpose_naive");
        assert!(prep > 0.4, "prep share {prep}");
        assert!(r.transfer_share > 0.0);
    }

    #[test]
    fn shares_sum_to_one() {
        for r in all_hotspots(&ConvConfig::paper_base(), &DeviceSpec::k40c()) {
            let sum: f64 = r.kernel_shares.iter().map(|(_, s)| s).sum();
            assert!((sum - 1.0).abs() < 1e-9, "{}: {sum}", r.implementation);
        }
    }
}
