//! Whole-model framework comparison — the paper's practitioner question
//! asked at model granularity.
//!
//! The paper compares implementations one convolutional layer at a time;
//! a practitioner choosing a framework cares about the *whole model*.
//! This module times every conv layer of a model under every
//! implementation and reports (a) each framework's end-to-end conv time,
//! and (b) the "oracle" schedule that picks the best implementation per
//! layer — an upper bound on what a cuDNN-style auto-tuner could win,
//! and a direct consequence of the paper's "no single implementation is
//! the best for all scenarios".

use gcnn_frameworks::{all_implementations, ConvImplementation};
use gcnn_gpusim::DeviceSpec;
use gcnn_models::layer::{walk, InstanceKind, ModelSpec};
use serde::{Deserialize, Serialize};

/// Per-layer winner entry of the oracle schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OracleChoice {
    /// Layer name.
    pub layer: String,
    /// Winning implementation.
    pub implementation: String,
    /// Its time for the layer, milliseconds.
    pub time_ms: f64,
}

/// Result of a whole-model comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelComparison {
    /// Model name.
    pub model: String,
    /// Mini-batch used.
    pub batch: usize,
    /// Per-framework total conv time (ms); `None` when any layer is
    /// unsupported or out of memory on the device.
    pub totals: Vec<(String, Option<f64>)>,
    /// The per-layer oracle schedule.
    pub oracle: Vec<OracleChoice>,
}

impl ModelComparison {
    /// The oracle's total conv time.
    pub fn oracle_ms(&self) -> f64 {
        self.oracle.iter().map(|c| c.time_ms).sum()
    }

    /// Best single framework (name, total).
    pub fn best_single(&self) -> Option<(&str, f64)> {
        self.totals
            .iter()
            .filter_map(|(n, t)| t.map(|t| (n.as_str(), t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// How many distinct implementations the oracle uses.
    pub fn oracle_diversity(&self) -> usize {
        self.oracle
            .iter()
            .map(|c| c.implementation.as_str())
            .collect::<std::collections::HashSet<_>>()
            .len()
    }
}

/// Time one layer's conv under one implementation (kernels + visible
/// transfers; memory constraints checked against the device).
fn layer_time(
    imp: &dyn ConvImplementation,
    cfg: &gcnn_conv::ConvConfig,
    dev: &DeviceSpec,
) -> Option<f64> {
    imp.supports(cfg).ok()?;
    imp.plan(cfg).execute(dev, 1).ok().map(|r| r.total_ms())
}

/// Compare all implementations over every conv layer of `model`.
pub fn compare_model(model: &ModelSpec, batch: usize, dev: &DeviceSpec) -> ModelComparison {
    let impls = all_implementations();
    let convs: Vec<_> = walk(model, batch)
        .into_iter()
        .filter(|inst| inst.kind == InstanceKind::Conv)
        .collect();

    let mut totals: Vec<(String, Option<f64>)> = impls
        .iter()
        .map(|i| (i.name().to_string(), Some(0.0)))
        .collect();
    let mut oracle = Vec::with_capacity(convs.len());

    for inst in &convs {
        let cfg = inst.conv.expect("conv instance");
        let mut best: Option<(String, f64)> = None;
        for (imp, total) in impls.iter().zip(totals.iter_mut()) {
            match layer_time(imp.as_ref(), &cfg, dev) {
                Some(t) => {
                    if let Some(acc) = total.1.as_mut() {
                        *acc += t;
                    }
                    if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                        best = Some((imp.name().to_string(), t));
                    }
                }
                None => total.1 = None,
            }
        }
        let (implementation, time_ms) = best.expect("at least one implementation per layer");
        oracle.push(OracleChoice {
            layer: inst.name.clone(),
            implementation,
            time_ms,
        });
    }

    ModelComparison {
        model: model.name.clone(),
        batch,
        totals,
        oracle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gcnn_models::{alexnet, googlenet, vgg16};

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    #[test]
    fn oracle_never_worse_than_best_single() {
        for model in [alexnet(), vgg16()] {
            let cmp = compare_model(&model, 32, &dev());
            let (name, best) = cmp.best_single().expect("some framework completes");
            assert!(
                cmp.oracle_ms() <= best + 1e-9,
                "{}: oracle {} vs {name} {best}",
                cmp.model,
                cmp.oracle_ms()
            );
        }
    }

    #[test]
    fn oracle_mixes_implementations_on_alexnet() {
        // AlexNet has an 11×11/stride-4 first layer (cuDNN territory —
        // stride rules the FFT pair out) and 3×3/stride-1 tails: the
        // oracle must not be a single implementation.
        let cmp = compare_model(&alexnet(), 32, &dev());
        assert!(
            cmp.oracle_diversity() >= 2,
            "diversity {}",
            cmp.oracle_diversity()
        );
    }

    #[test]
    fn strided_layers_never_go_to_fft() {
        let cmp = compare_model(&alexnet(), 32, &dev());
        let conv1 = &cmp.oracle[0]; // stride-4 layer
        assert_ne!(conv1.implementation, "fbfft");
        assert_ne!(conv1.implementation, "Theano-fft");
    }

    #[test]
    fn totals_cover_all_seven() {
        let cmp = compare_model(&googlenet(), 16, &dev());
        assert_eq!(cmp.totals.len(), 7);
        // GoogLeNet's stride-2 stem conv rules out the FFT pair for the
        // whole-model totals.
        let fbfft_total = cmp.totals.iter().find(|(n, _)| n == "fbfft").unwrap();
        assert!(fbfft_total.1.is_none());
        // The unrollers complete everything.
        let cudnn_total = cmp.totals.iter().find(|(n, _)| n == "cuDNN").unwrap();
        assert!(cudnn_total.1.is_some());
    }

    #[test]
    fn oracle_covers_every_conv_layer() {
        let model = vgg16();
        let cmp = compare_model(&model, 16, &dev());
        let conv_count = walk(&model, 16)
            .iter()
            .filter(|i| i.kind == InstanceKind::Conv)
            .count();
        assert_eq!(cmp.oracle.len(), conv_count);
    }
}
