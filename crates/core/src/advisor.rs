//! The implementation advisor.
//!
//! The paper's stated goal (§I): *"assist practitioners identifying the
//! implementations that best serve their CNN computation needs in
//! different scenarios"*, and its Summary heuristics (§IV-B, §V-B):
//! fbfft for large kernels, cuDNN for small kernels or strides > 1,
//! cuda-convnet2 when memory is tight, "a trade-off between speed and
//! memory consumption needs to be considered". [`advise`] runs the
//! actual models rather than the heuristics — and the tests check the
//! two agree.

use crate::compare::{evaluate, ComparisonCell};
use gcnn_autotune::{CacheKey, Direction, SimSubstrate, Substrate, TuningCache};
use gcnn_conv::ConvConfig;
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// What the practitioner is optimizing for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Minimize runtime, memory no object.
    Speed,
    /// Minimize peak memory.
    Memory,
    /// Minimize runtime subject to a peak-memory budget in bytes.
    SpeedWithinMemory(u64),
}

/// One candidate row in an [`Advice`]: name, modeled time, peak memory,
/// and why it was excluded (if it was).
pub type Candidate = (String, Option<f64>, Option<u64>, Option<String>);

/// The advisor's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Advice {
    /// Recommended implementation.
    pub implementation: String,
    /// Its modeled time (ms) for one training iteration.
    pub time_ms: f64,
    /// Its peak memory (bytes).
    pub peak_bytes: u64,
    /// All candidates considered: `(name, time, peak, excluded_reason)`.
    pub candidates: Vec<Candidate>,
}

/// Recommend an implementation for a configuration and scenario.
///
/// Returns `None` when no implementation supports the configuration
/// within the constraints.
///
/// ```
/// use gcnn_conv::ConvConfig;
/// use gcnn_core::{advise, Scenario};
/// use gcnn_gpusim::DeviceSpec;
///
/// let cfg = ConvConfig::paper_base(); // large 11×11 kernels
/// let advice = advise(&cfg, Scenario::Speed, &DeviceSpec::k40c()).unwrap();
/// assert_eq!(advice.implementation, "fbfft"); // the paper's §IV-B summary
/// ```
pub fn advise(cfg: &ConvConfig, scenario: Scenario, dev: &DeviceSpec) -> Option<Advice> {
    let mut candidates = Vec::new();
    let mut best: Option<(String, f64, u64)> = None;

    for imp in all_implementations() {
        let name = imp.name().to_string();
        match evaluate(imp.as_ref(), cfg, dev) {
            ComparisonCell::Unsupported(reason) => {
                candidates.push((name, None, None, Some(reason)));
            }
            ComparisonCell::OutOfMemory => {
                candidates.push((name, None, None, Some("out of device memory".into())));
            }
            ComparisonCell::Time(t) => {
                let peak = imp.plan(cfg).peak_bytes();
                let excluded = match scenario {
                    Scenario::SpeedWithinMemory(budget) if peak > budget => {
                        Some(format!("peak {peak} B exceeds budget {budget} B"))
                    }
                    _ => None,
                };
                let eligible = excluded.is_none();
                candidates.push((name.clone(), Some(t), Some(peak), excluded));
                if eligible {
                    let better = match (&best, scenario) {
                        (None, _) => true,
                        (Some((_, bt, _)), Scenario::Speed | Scenario::SpeedWithinMemory(_)) => {
                            t < *bt
                        }
                        (Some((_, _, bp)), Scenario::Memory) => peak < *bp,
                    };
                    if better {
                        best = Some((name, t, peak));
                    }
                }
            }
        }
    }

    best.map(|(implementation, time_ms, peak_bytes)| Advice {
        implementation,
        time_ms,
        peak_bytes,
        candidates,
    })
}

/// [`advise`], deferring to a measured result when the tuning cache
/// holds one for this `(device, config)` pair.
///
/// A cached winner (from `gcnn-autotune`'s `Policy::Measure` on the
/// simulator substrate) answers the speed scenarios directly; the
/// returned advice then carries a single candidate row — the measured
/// winner — rather than the full seven-way sweep, which is how callers
/// can tell a measured verdict from a modeled one. The hit is ignored
/// (and the full model-based sweep runs) when the scenario is
/// [`Scenario::Memory`] — the cache stores speed winners — or when the
/// cached workspace exceeds a [`Scenario::SpeedWithinMemory`] budget.
pub fn advise_with_cache(
    cfg: &ConvConfig,
    scenario: Scenario,
    dev: &DeviceSpec,
    cache: &mut TuningCache,
) -> Option<Advice> {
    let measured = match scenario {
        Scenario::Memory => None,
        Scenario::Speed | Scenario::SpeedWithinMemory(_) => cache.lookup(&CacheKey {
            device: SimSubstrate::new(dev.clone()).fingerprint(),
            cfg: *cfg,
            direction: Direction::Training,
        }),
    };
    if let Some(entry) = measured {
        let fits = match scenario {
            Scenario::SpeedWithinMemory(budget) => entry.workspace_bytes <= budget,
            _ => true,
        };
        if fits {
            return Some(Advice {
                implementation: entry.implementation.clone(),
                time_ms: entry.time_ms,
                peak_bytes: entry.workspace_bytes,
                candidates: vec![(
                    entry.implementation,
                    Some(entry.time_ms),
                    Some(entry.workspace_bytes),
                    None,
                )],
            });
        }
    }
    advise(cfg, scenario, dev)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    #[test]
    fn large_kernel_speed_advice_is_fbfft() {
        // Paper Summary: "fbfft is the fastest implementation to train a
        // CNN model with large kernels."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 11, 1);
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.implementation, "fbfft");
    }

    #[test]
    fn small_kernel_speed_advice_is_cudnn() {
        // "For small kernels, cuDNN would be a good choice."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 3, 1);
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.implementation, "cuDNN");
    }

    #[test]
    fn strided_configs_go_to_cudnn() {
        // "For greater stride, cuDNN results in the best performance."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 11, 2);
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.implementation, "cuDNN");
        // FFT entries must be listed as excluded.
        let fbfft = a.candidates.iter().find(|(n, ..)| n == "fbfft").unwrap();
        assert!(fbfft.3.is_some());
    }

    #[test]
    fn memory_scenario_picks_cc2() {
        // "Cuda-convnet2 is well suitable for cases when the memory is
        // limited."
        let cfg = ConvConfig::paper_base();
        let a = advise(&cfg, Scenario::Memory, &dev()).unwrap();
        assert_eq!(a.implementation, "cuda-convnet2");
    }

    #[test]
    fn memory_budget_excludes_fbfft() {
        // With a 1 GB budget the FFT implementations are out and the
        // fastest remaining (cuDNN's fused path or Torch/Caffe) wins.
        let cfg = ConvConfig::paper_base();
        let a = advise(&cfg, Scenario::SpeedWithinMemory(1 << 30), &dev()).unwrap();
        assert_ne!(a.implementation, "fbfft");
        assert!(a.peak_bytes <= 1 << 30);
        let fb = a.candidates.iter().find(|(n, ..)| n == "fbfft").unwrap();
        assert!(fb.3.as_deref().unwrap_or("").contains("budget"));
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let cfg = ConvConfig::paper_base();
        assert!(advise(&cfg, Scenario::SpeedWithinMemory(1), &dev()).is_none());
    }

    #[test]
    fn candidates_cover_all_seven() {
        let cfg = ConvConfig::paper_base();
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.candidates.len(), 7);
    }

    #[test]
    fn cached_measurement_overrides_model_sweep() {
        use gcnn_autotune::{MeasureParams, Policy, Repeats, Tuner};

        let cfg = ConvConfig::paper_base();
        let sub = SimSubstrate::new(dev());
        let mut cache = TuningCache::new();

        // Empty cache: identical to plain advise (full 7-way sweep).
        let cold = advise_with_cache(&cfg, Scenario::Speed, &dev(), &mut cache).unwrap();
        assert_eq!(cold.candidates.len(), 7);
        assert_eq!(cold.implementation, "fbfft");

        // Measure-and-cache, then ask again: the measured winner
        // answers, single candidate row.
        let tuner = Tuner::new(Policy::Measure).with_params(MeasureParams {
            repeats: Repeats::new(1, 3),
            timeout_ms: None,
        });
        tuner
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();
        let warm = advise_with_cache(&cfg, Scenario::Speed, &dev(), &mut cache).unwrap();
        assert_eq!(warm.candidates.len(), 1, "cache hit skips the sweep");
        assert_eq!(warm.implementation, cold.implementation);
        assert!((warm.time_ms - cold.time_ms).abs() < 1e-9);
    }

    #[test]
    fn cache_hit_respects_memory_scenarios() {
        use gcnn_autotune::{MeasureParams, Policy, Repeats, Tuner};

        let cfg = ConvConfig::paper_base();
        let sub = SimSubstrate::new(dev());
        let mut cache = TuningCache::new();
        Tuner::new(Policy::Measure)
            .with_params(MeasureParams {
                repeats: Repeats::new(1, 3),
                timeout_ms: None,
            })
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();

        // Memory scenario never consults the speed cache.
        let mem = advise_with_cache(&cfg, Scenario::Memory, &dev(), &mut cache).unwrap();
        assert_eq!(mem.implementation, "cuda-convnet2");
        assert_eq!(mem.candidates.len(), 7);

        // A budget below the cached workspace falls back to the sweep.
        let tight = advise_with_cache(
            &cfg,
            Scenario::SpeedWithinMemory(1 << 30),
            &dev(),
            &mut cache,
        )
        .unwrap();
        assert_eq!(tight.candidates.len(), 7);
        assert_ne!(tight.implementation, "fbfft");
        assert!(tight.peak_bytes <= 1 << 30);
    }
}
