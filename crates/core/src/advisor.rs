//! The implementation advisor.
//!
//! The paper's stated goal (§I): *"assist practitioners identifying the
//! implementations that best serve their CNN computation needs in
//! different scenarios"*, and its Summary heuristics (§IV-B, §V-B):
//! fbfft for large kernels, cuDNN for small kernels or strides > 1,
//! cuda-convnet2 when memory is tight, "a trade-off between speed and
//! memory consumption needs to be considered". [`advise`] runs the
//! actual models rather than the heuristics — and the tests check the
//! two agree.

use crate::compare::{evaluate, ComparisonCell};
use gcnn_conv::ConvConfig;
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// What the practitioner is optimizing for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Scenario {
    /// Minimize runtime, memory no object.
    Speed,
    /// Minimize peak memory.
    Memory,
    /// Minimize runtime subject to a peak-memory budget in bytes.
    SpeedWithinMemory(u64),
}

/// One candidate row in an [`Advice`]: name, modeled time, peak memory,
/// and why it was excluded (if it was).
pub type Candidate = (String, Option<f64>, Option<u64>, Option<String>);

/// The advisor's verdict.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Advice {
    /// Recommended implementation.
    pub implementation: String,
    /// Its modeled time (ms) for one training iteration.
    pub time_ms: f64,
    /// Its peak memory (bytes).
    pub peak_bytes: u64,
    /// All candidates considered: `(name, time, peak, excluded_reason)`.
    pub candidates: Vec<Candidate>,
}

/// Recommend an implementation for a configuration and scenario.
///
/// Returns `None` when no implementation supports the configuration
/// within the constraints.
///
/// ```
/// use gcnn_conv::ConvConfig;
/// use gcnn_core::{advise, Scenario};
/// use gcnn_gpusim::DeviceSpec;
///
/// let cfg = ConvConfig::paper_base(); // large 11×11 kernels
/// let advice = advise(&cfg, Scenario::Speed, &DeviceSpec::k40c()).unwrap();
/// assert_eq!(advice.implementation, "fbfft"); // the paper's §IV-B summary
/// ```
pub fn advise(cfg: &ConvConfig, scenario: Scenario, dev: &DeviceSpec) -> Option<Advice> {
    let mut candidates = Vec::new();
    let mut best: Option<(String, f64, u64)> = None;

    for imp in all_implementations() {
        let name = imp.name().to_string();
        match evaluate(imp.as_ref(), cfg, dev) {
            ComparisonCell::Unsupported(reason) => {
                candidates.push((name, None, None, Some(reason)));
            }
            ComparisonCell::OutOfMemory => {
                candidates.push((name, None, None, Some("out of device memory".into())));
            }
            ComparisonCell::Time(t) => {
                let peak = imp.plan(cfg).peak_bytes();
                let excluded = match scenario {
                    Scenario::SpeedWithinMemory(budget) if peak > budget => {
                        Some(format!("peak {peak} B exceeds budget {budget} B"))
                    }
                    _ => None,
                };
                let eligible = excluded.is_none();
                candidates.push((name.clone(), Some(t), Some(peak), excluded));
                if eligible {
                    let better = match (&best, scenario) {
                        (None, _) => true,
                        (Some((_, bt, _)), Scenario::Speed | Scenario::SpeedWithinMemory(_)) => {
                            t < *bt
                        }
                        (Some((_, _, bp)), Scenario::Memory) => peak < *bp,
                    };
                    if better {
                        best = Some((name, t, peak));
                    }
                }
            }
        }
    }

    best.map(|(implementation, time_ms, peak_bytes)| Advice {
        implementation,
        time_ms,
        peak_bytes,
        candidates,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> DeviceSpec {
        DeviceSpec::k40c()
    }

    #[test]
    fn large_kernel_speed_advice_is_fbfft() {
        // Paper Summary: "fbfft is the fastest implementation to train a
        // CNN model with large kernels."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 11, 1);
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.implementation, "fbfft");
    }

    #[test]
    fn small_kernel_speed_advice_is_cudnn() {
        // "For small kernels, cuDNN would be a good choice."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 3, 1);
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.implementation, "cuDNN");
    }

    #[test]
    fn strided_configs_go_to_cudnn() {
        // "For greater stride, cuDNN results in the best performance."
        let cfg = ConvConfig::from_tuple(64, 128, 64, 11, 2);
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.implementation, "cuDNN");
        // FFT entries must be listed as excluded.
        let fbfft = a.candidates.iter().find(|(n, ..)| n == "fbfft").unwrap();
        assert!(fbfft.3.is_some());
    }

    #[test]
    fn memory_scenario_picks_cc2() {
        // "Cuda-convnet2 is well suitable for cases when the memory is
        // limited."
        let cfg = ConvConfig::paper_base();
        let a = advise(&cfg, Scenario::Memory, &dev()).unwrap();
        assert_eq!(a.implementation, "cuda-convnet2");
    }

    #[test]
    fn memory_budget_excludes_fbfft() {
        // With a 1 GB budget the FFT implementations are out and the
        // fastest remaining (cuDNN's fused path or Torch/Caffe) wins.
        let cfg = ConvConfig::paper_base();
        let a = advise(&cfg, Scenario::SpeedWithinMemory(1 << 30), &dev()).unwrap();
        assert_ne!(a.implementation, "fbfft");
        assert!(a.peak_bytes <= 1 << 30);
        let fb = a.candidates.iter().find(|(n, ..)| n == "fbfft").unwrap();
        assert!(fb.3.as_deref().unwrap_or("").contains("budget"));
    }

    #[test]
    fn impossible_constraints_yield_none() {
        let cfg = ConvConfig::paper_base();
        assert!(advise(&cfg, Scenario::SpeedWithinMemory(1), &dev()).is_none());
    }

    #[test]
    fn candidates_cover_all_seven() {
        let cfg = ConvConfig::paper_base();
        let a = advise(&cfg, Scenario::Speed, &dev()).unwrap();
        assert_eq!(a.candidates.len(), 7);
    }
}
