//! Fig. 7: CPU↔GPU data-transfer overhead.

use gcnn_conv::{table1_configs, TABLE1_NAMES};
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Transfer overhead of one implementation over the five Table I
/// configurations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransferRow {
    /// Implementation name.
    pub implementation: String,
    /// `(layer name, transfer fraction of total runtime)`; None when the
    /// shape is unsupported.
    pub fractions: Vec<(String, Option<f64>)>,
}

impl TransferRow {
    /// Fraction at a named Table I layer.
    pub fn at(&self, layer: &str) -> Option<f64> {
        self.fractions
            .iter()
            .find(|(n, _)| n == layer)
            .and_then(|(_, f)| *f)
    }

    /// Largest fraction across the supported layers.
    pub fn max_fraction(&self) -> f64 {
        self.fractions
            .iter()
            .filter_map(|(_, f)| *f)
            .fold(0.0, f64::max)
    }
}

/// The full Fig. 7 grid.
pub fn transfer_overheads(dev: &DeviceSpec) -> Vec<TransferRow> {
    all_implementations()
        .iter()
        .map(|imp| {
            let fractions = table1_configs()
                .iter()
                .zip(TABLE1_NAMES)
                .map(|(cfg, name)| {
                    let f = imp
                        .supports(cfg)
                        .ok()
                        .and_then(|_| imp.plan(cfg).execute(dev, 1).ok())
                        .map(|r| r.transfer_fraction());
                    (name.to_string(), f)
                })
                .collect();
            TransferRow {
                implementation: imp.name().to_string(),
                fractions,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> Vec<TransferRow> {
        transfer_overheads(&DeviceSpec::k40c())
    }

    fn row<'a>(rows: &'a [TransferRow], name: &str) -> &'a TransferRow {
        rows.iter().find(|r| r.implementation == name).unwrap()
    }

    #[test]
    fn hidden_transfer_trio_near_zero() {
        // Paper Fig. 7: "cuDNN, Caffe and fbfft have the lowest
        // percentage (almost 0%) of data transfer time".
        let rows = grid();
        for name in ["cuDNN", "Caffe", "fbfft"] {
            assert!(
                row(&rows, name).max_fraction() < 0.01,
                "{name}: {}",
                row(&rows, name).max_fraction()
            );
        }
    }

    #[test]
    fn middle_band_one_to_fifteen_percent() {
        // Paper: "Torch-cunn, cuda-convnet2 and Theano-fft have
        // relatively higher percentage (from 1% to 15%)".
        let rows = grid();
        for name in ["Torch-cunn", "cuda-convnet2", "Theano-fft"] {
            let r = row(&rows, name);
            let max = r.max_fraction();
            assert!((0.005..=0.20).contains(&max), "{name}: max fraction {max}");
        }
    }

    #[test]
    fn corrmm_conv2_spike() {
        // Paper: "Theano-CorrMM in the second configuration (Conv2) has
        // a significant data transfer overhead (more than 60% of its
        // total runtime)".
        let rows = grid();
        let r = row(&rows, "Theano-CorrMM");
        let conv2 = r.at("Conv2").unwrap();
        assert!(conv2 > 0.5, "Conv2 fraction {conv2}");
        // And it is an outlier: every other layer stays small.
        for layer in ["Conv1", "Conv3", "Conv4", "Conv5"] {
            let f = r.at(layer).unwrap();
            assert!(f < 0.10, "{layer}: {f}");
        }
    }

    #[test]
    fn all_rows_cover_all_layers() {
        for r in grid() {
            assert_eq!(r.fractions.len(), 5, "{}", r.implementation);
            // Table I is stride-1: everything supported.
            assert!(r.fractions.iter().all(|(_, f)| f.is_some()));
        }
    }
}
