//! The paper's five parameter sweeps (§IV-B).
//!
//! *"We organize those 5 parameters into a 5-tuple (b, i, f, k, s) […]
//! we have five groups of 5-tuples: (b, 128, 64, 11, 1), (64, i, 64,
//! 11, 1), (64, 128, f, 11, 1), (64, 128, 64, k, 1) and (64, 128, 64,
//! 11, s)."* Batch ranges 32–512 in steps of 32, input 32–256 in steps
//! of 16, filters 32–512 in steps of 16.

use gcnn_conv::ConvConfig;
use serde::{Deserialize, Serialize};

/// Which tuple element a sweep varies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SweepAxis {
    /// Mini-batch size `b`.
    Batch,
    /// Input size `i`.
    Input,
    /// Filter count `f`.
    Filters,
    /// Kernel size `k`.
    Kernel,
    /// Stride `s`.
    Stride,
}

impl SweepAxis {
    /// Axis label for reports.
    pub const fn label(&self) -> &'static str {
        match self {
            SweepAxis::Batch => "mini-batch size",
            SweepAxis::Input => "input size",
            SweepAxis::Filters => "filter number",
            SweepAxis::Kernel => "kernel size",
            SweepAxis::Stride => "stride",
        }
    }
}

/// One sweep: an axis and the values it takes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sweep {
    /// The varied axis.
    pub axis: SweepAxis,
    /// The values the axis takes (other tuple elements stay at the base
    /// configuration).
    pub values: Vec<usize>,
}

impl Sweep {
    /// The configuration at one sweep point. Channels stay at the base
    /// configuration's 3 throughout — the sweeps vary exactly one tuple
    /// element, like the paper's Fig. 3/5 panels.
    pub fn config_at(&self, value: usize) -> ConvConfig {
        let base = ConvConfig::paper_base();
        match self.axis {
            SweepAxis::Batch => ConvConfig::with_channels(value, 3, 128, 64, 11, 1),
            SweepAxis::Input => ConvConfig::with_channels(64, 3, value, 64, 11, 1),
            SweepAxis::Filters => ConvConfig::with_channels(64, 3, 128, value, 11, 1),
            SweepAxis::Kernel => ConvConfig::with_channels(64, 3, 128, 64, value, 1),
            SweepAxis::Stride => ConvConfig::with_channels(64, 3, 128, 64, 11, value),
        }
        .validated_against(base)
    }

    /// All configurations of the sweep.
    pub fn configs(&self) -> Vec<(usize, ConvConfig)> {
        self.values
            .iter()
            .map(|&v| (v, self.config_at(v)))
            .collect()
    }
}

trait Validated {
    fn validated_against(self, base: ConvConfig) -> ConvConfig;
}

impl Validated for ConvConfig {
    fn validated_against(self, _base: ConvConfig) -> ConvConfig {
        debug_assert!(self.is_valid(), "sweep produced invalid config {self}");
        self
    }
}

/// The paper's five sweeps (§IV-B ranges; kernel and stride ranges are
/// the plotted 3–15 odd kernels and strides 1–4).
pub fn paper_sweeps() -> Vec<Sweep> {
    vec![
        Sweep {
            axis: SweepAxis::Batch,
            values: (32..=512).step_by(32).collect(),
        },
        Sweep {
            axis: SweepAxis::Input,
            values: (32..=256).step_by(16).collect(),
        },
        Sweep {
            axis: SweepAxis::Filters,
            values: (32..=512).step_by(16).collect(),
        },
        Sweep {
            axis: SweepAxis::Kernel,
            values: (3..=15).step_by(2).collect(),
        },
        Sweep {
            axis: SweepAxis::Stride,
            values: (1..=4).collect(),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_sweeps_with_paper_ranges() {
        let sweeps = paper_sweeps();
        assert_eq!(sweeps.len(), 5);
        assert_eq!(sweeps[0].values.first(), Some(&32));
        assert_eq!(sweeps[0].values.last(), Some(&512));
        assert_eq!(sweeps[0].values.len(), 16); // multiples of 32
        assert_eq!(sweeps[1].values.last(), Some(&256));
        assert_eq!(sweeps[2].values.len(), 31); // 32..512 step 16
        assert_eq!(sweeps[4].values, vec![1, 2, 3, 4]);
    }

    #[test]
    fn sweep_points_fix_other_axes_at_base() {
        let sweeps = paper_sweeps();
        let cfg = sweeps[0].config_at(256);
        assert_eq!(cfg.batch, 256);
        assert_eq!(
            (cfg.input, cfg.filters, cfg.kernel, cfg.stride),
            (128, 64, 11, 1)
        );

        let cfg = sweeps[3].config_at(7);
        assert_eq!(cfg.kernel, 7);
        assert_eq!(cfg.batch, 64);
    }

    #[test]
    fn all_sweep_configs_valid() {
        for sweep in paper_sweeps() {
            for (v, cfg) in sweep.configs() {
                assert!(cfg.is_valid(), "{:?}={v}: {cfg}", sweep.axis);
            }
        }
    }
}
