//! Fig. 3: head-to-head runtime comparison.

use crate::sweep::Sweep;
use gcnn_conv::ConvConfig;
use gcnn_frameworks::{all_implementations, ConvImplementation};
use gcnn_gpusim::DeviceSpec;
use serde::{Deserialize, Serialize};

/// One implementation's result at one sweep point.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ComparisonCell {
    /// Modeled time for one training iteration, milliseconds.
    Time(f64),
    /// The implementation rejects this shape (paper §IV-B: dots/gaps in
    /// the plots).
    Unsupported(String),
    /// The configuration exceeds device memory (the paper observed
    /// "program crush" for FFT implementations at such points).
    OutOfMemory,
}

impl ComparisonCell {
    /// The time, if the run succeeded.
    pub fn time(&self) -> Option<f64> {
        match self {
            ComparisonCell::Time(t) => Some(*t),
            _ => None,
        }
    }
}

/// A full sweep × implementations table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// Axis label.
    pub axis: String,
    /// Sweep values (x-axis).
    pub values: Vec<usize>,
    /// Implementation names (column order).
    pub implementations: Vec<String>,
    /// `cells[point][impl]`.
    pub cells: Vec<Vec<ComparisonCell>>,
}

impl ComparisonTable {
    /// The fastest supported implementation at a sweep point.
    pub fn winner_at(&self, point: usize) -> Option<(&str, f64)> {
        self.cells[point]
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.time().map(|t| (self.implementations[i].as_str(), t)))
            .min_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Time of a named implementation at a point.
    pub fn time_of(&self, point: usize, name: &str) -> Option<f64> {
        let idx = self.implementations.iter().position(|n| n == name)?;
        self.cells[point][idx].time()
    }

    /// Speedup of `a` over `b` at a point (`t_b / t_a`).
    pub fn speedup(&self, point: usize, a: &str, b: &str) -> Option<f64> {
        Some(self.time_of(point, b)? / self.time_of(point, a)?)
    }
}

/// Evaluate one implementation at one configuration: one training
/// iteration on the device model.
pub fn evaluate(
    imp: &dyn ConvImplementation,
    cfg: &ConvConfig,
    dev: &DeviceSpec,
) -> ComparisonCell {
    if let Err(e) = imp.supports(cfg) {
        return ComparisonCell::Unsupported(e.to_string());
    }
    match imp.plan(cfg).execute(dev, 1) {
        Ok(report) => ComparisonCell::Time(report.total_ms()),
        Err(_) => ComparisonCell::OutOfMemory,
    }
}

/// Run one sweep over all seven implementations.
pub fn runtime_comparison(sweep: &Sweep, dev: &DeviceSpec) -> ComparisonTable {
    let impls = all_implementations();
    let mut cells = Vec::with_capacity(sweep.values.len());
    for (_, cfg) in sweep.configs() {
        cells.push(
            impls
                .iter()
                .map(|imp| evaluate(imp.as_ref(), &cfg, dev))
                .collect(),
        );
    }
    ComparisonTable {
        axis: sweep.axis.label().to_string(),
        values: sweep.values.clone(),
        implementations: impls.iter().map(|i| i.name().to_string()).collect(),
        cells,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::{paper_sweeps, SweepAxis};

    fn table_for(axis: SweepAxis) -> ComparisonTable {
        let sweep = paper_sweeps().into_iter().find(|s| s.axis == axis).unwrap();
        runtime_comparison(&sweep, &DeviceSpec::k40c())
    }

    #[test]
    fn fbfft_wins_batch_sweep() {
        // Paper Fig. 3a: fbfft fastest at every batch size (k = 11).
        let t = table_for(SweepAxis::Batch);
        for p in 0..t.values.len() {
            let (winner, _) = t.winner_at(p).unwrap();
            assert_eq!(winner, "fbfft", "batch {}", t.values[p]);
        }
    }

    #[test]
    fn fbfft_speedup_band_on_batch_sweep() {
        // Paper: fbfft 1.4×–9.7× over the others across batch/input
        // sweeps.
        let t = table_for(SweepAxis::Batch);
        for p in 0..t.values.len() {
            for other in ["Caffe", "cuDNN", "Torch-cunn", "Theano-fft"] {
                if let Some(s) = t.speedup(p, "fbfft", other) {
                    assert!(
                        (1.2..=20.0).contains(&s),
                        "batch {}: fbfft vs {other} = {s:.2}",
                        t.values[p]
                    );
                }
            }
        }
    }

    #[test]
    fn theano_fft_slowest_on_input_sweep() {
        let t = table_for(SweepAxis::Input);
        for p in 0..t.values.len() {
            let slowest = t.cells[p]
                .iter()
                .enumerate()
                .filter_map(|(i, c)| c.time().map(|tm| (i, tm)))
                .max_by(|a, b| a.1.total_cmp(&b.1))
                .unwrap();
            assert_eq!(
                t.implementations[slowest.0], "Theano-fft",
                "input {}",
                t.values[p]
            );
        }
    }

    #[test]
    fn stride_sweep_restrictions_and_winner() {
        // Paper Fig. 3e: FFT implementations are single points at
        // stride 1; cuDNN best at stride > 1.
        let t = table_for(SweepAxis::Stride);
        for (p, &s) in t.values.iter().enumerate() {
            let fbfft_idx = t.implementations.iter().position(|n| n == "fbfft").unwrap();
            if s == 1 {
                assert!(t.cells[p][fbfft_idx].time().is_some());
                assert_eq!(t.winner_at(p).unwrap().0, "fbfft");
            } else {
                assert!(matches!(
                    t.cells[p][fbfft_idx],
                    ComparisonCell::Unsupported(_)
                ));
                assert_eq!(t.winner_at(p).unwrap().0, "cuDNN", "stride {s}");
            }
        }
    }

    #[test]
    fn kernel_sweep_crossover() {
        // Paper Fig. 3d: cuDNN wins below k = 7, fbfft at and above.
        let t = table_for(SweepAxis::Kernel);
        for (p, &k) in t.values.iter().enumerate() {
            let winner = t.winner_at(p).unwrap().0;
            if k < 7 {
                assert_eq!(winner, "cuDNN", "k={k}");
            } else {
                assert_eq!(winner, "fbfft", "k={k}");
            }
        }
    }

    #[test]
    fn cc2_unsupported_off_multiples() {
        let sweep = Sweep {
            axis: SweepAxis::Batch,
            values: vec![48],
        };
        let t = runtime_comparison(&sweep, &DeviceSpec::k40c());
        let idx = t
            .implementations
            .iter()
            .position(|n| n == "cuda-convnet2")
            .unwrap();
        assert!(matches!(t.cells[0][idx], ComparisonCell::Unsupported(_)));
    }
}
