//! Train LeNet-5 (the paper's Fig. 1 architecture) on synthetic digits
//! with each of the three convolution strategies and verify they all
//! learn the task — the cross-strategy equivalence underpinning the
//! paper's whole comparison, demonstrated with real numerics.
//!
//! ```sh
//! cargo run --release --example lenet_training
//! ```

#![forbid(unsafe_code)]

use gcnn_conv::Strategy;
use gcnn_models::data::synthetic_digits;
use gcnn_models::Network;

fn main() {
    let classes = 4;
    let size = 16; // LeNet geometry scaled to keep the demo fast on CPU
    let train = synthetic_digits(256, size, classes, 42);
    let test = synthetic_digits(64, size, classes, 43);
    println!(
        "synthetic digits: {} train / {} test, {classes} classes, {size}×{size}\n",
        train.len(),
        test.len()
    );

    for strategy in [Strategy::Direct, Strategy::Unrolling, Strategy::Fft] {
        let mut net = Network::lenet5(size, classes, strategy, 7);
        net.learning_rate = 0.1;
        let t0 = std::time::Instant::now();
        let report = net.train(&train, &test, 32, 3);
        let secs = t0.elapsed().as_secs_f64();

        println!("strategy: {strategy}");
        for (epoch, loss) in report.epoch_losses.iter().enumerate() {
            println!("  epoch {epoch}: mean loss {loss:.4}");
        }
        println!(
            "  test accuracy {:.1}% (chance {:.1}%), trained in {secs:.1}s\n",
            100.0 * report.test_accuracy,
            100.0 / classes as f32
        );
        assert!(
            report.test_accuracy > 2.0 / classes as f32,
            "{strategy}: failed to beat chance"
        );
    }
    println!("all three strategies trained the same architecture successfully");
}
