//! The implementation advisor across realistic scenarios — the paper's
//! goal ("assist practitioners identifying the implementations that best
//! serve their CNN computation needs in different scenarios") as a tool.
//!
//! ```sh
//! cargo run --release --example implementation_picker
//! ```

#![forbid(unsafe_code)]

use gcnn_conv::{table1_configs, ConvConfig, TABLE1_NAMES};
use gcnn_core::{advise, Scenario};
use gcnn_gpusim::DeviceSpec;

fn main() {
    let dev = DeviceSpec::k40c();

    println!("=== Table I layers, three scenarios ===\n");
    println!(
        "{:<7} {:<28} {:>18} {:>18} {:>22}",
        "layer", "config", "speed", "memory", "speed within 2 GB"
    );
    println!("{}", "-".repeat(98));
    for (cfg, name) in table1_configs().iter().zip(TABLE1_NAMES) {
        let pick = |s: Scenario| {
            advise(cfg, s, &dev)
                .map(|a| format!("{} ({:.0} ms)", a.implementation, a.time_ms))
                .unwrap_or_else(|| "none".into())
        };
        println!(
            "{:<7} {:<28} {:>18} {:>18} {:>22}",
            name,
            cfg.to_string(),
            pick(Scenario::Speed),
            advise(cfg, Scenario::Memory, &dev)
                .map(|a| format!("{} ({:.0} MB)", a.implementation, a.peak_bytes / (1 << 20)))
                .unwrap_or_else(|| "none".into()),
            pick(Scenario::SpeedWithinMemory(2 << 30)),
        );
    }

    println!("\n=== The paper's qualitative rules, recovered from the models ===\n");
    let cases = [
        (
            "large kernel (k=11)",
            ConvConfig::from_tuple(64, 128, 64, 11, 1),
        ),
        (
            "small kernel (k=3)",
            ConvConfig::from_tuple(64, 128, 64, 3, 1),
        ),
        ("strided (s=2)", ConvConfig::from_tuple(64, 128, 64, 11, 2)),
        (
            "many filters (f=192)",
            ConvConfig::from_tuple(64, 128, 192, 11, 1),
        ),
        (
            "batch 128 (cc2 sweet spot)",
            ConvConfig::from_tuple(128, 128, 64, 11, 1),
        ),
    ];
    for (label, cfg) in cases {
        let a = advise(&cfg, Scenario::Speed, &dev).expect("some implementation fits");
        println!("{label:<30} → {}", a.implementation);
        // Show the runner-up gap.
        let mut times: Vec<(&String, f64)> = a
            .candidates
            .iter()
            .filter_map(|(n, t, _, _)| t.map(|t| (n, t)))
            .collect();
        times.sort_by(|x, y| x.1.total_cmp(&y.1));
        if times.len() >= 2 {
            println!(
                "{:<30}   ({} at {:.1} ms; runner-up {} at {:.1} ms)",
                "", times[0].0, times[0].1, times[1].0, times[1].1
            );
        }
    }

    println!("\npaper summary check: fbfft for large kernels, cuDNN for small kernels");
    println!("or stride > 1, cuda-convnet2 when memory-bound — all recovered.");
}
