//! Quickstart: compare the seven GPU convolution implementations on one
//! layer, check their numerics agree, and ask the advisor which to use.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

#![forbid(unsafe_code)]

use gcnn_conv::ConvConfig;
use gcnn_core::{advise, Scenario};
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use gcnn_tensor::init::uniform_tensor;

fn main() {
    // The paper's base configuration: batch 64, 128×128 RGB input,
    // 64 filters of 11×11, stride 1.
    let cfg = ConvConfig::paper_base();
    let dev = DeviceSpec::k40c();
    println!("configuration: {cfg} on {}\n", dev.name);

    // --- 1. Performance: one modeled training iteration each. ---
    println!(
        "{:<15} {:>10} {:>10} {:>9}",
        "implementation", "time ms", "peak MB", "strategy"
    );
    println!("{}", "-".repeat(48));
    for imp in all_implementations() {
        match imp.supports(&cfg) {
            Err(e) => println!("{:<15} unsupported: {e}", imp.name()),
            Ok(()) => {
                let plan = imp.plan(&cfg);
                let report = plan.execute(&dev, 1).expect("fits on the K40c");
                println!(
                    "{:<15} {:>10.1} {:>10.0} {:>9}",
                    imp.name(),
                    report.total_ms(),
                    plan.peak_bytes() as f64 / (1024.0 * 1024.0),
                    imp.strategy().to_string(),
                );
            }
        }
    }

    // --- 2. Correctness: every implementation's real algorithm must
    //        produce the same convolution (checked on a smaller shape so
    //        the quickstart stays quick). ---
    let small = ConvConfig::with_channels(32, 3, 16, 16, 5, 1);
    let x = uniform_tensor(small.input_shape(), -1.0, 1.0, 1);
    let w = uniform_tensor(small.filter_shape(), -1.0, 1.0, 2);
    let reference = gcnn_conv::reference::forward_ref(&small, &x, &w);
    println!("\nnumerical agreement on {small}:");
    for imp in all_implementations() {
        let out = imp.algorithm().forward(&small, &x, &w);
        let dist = out.rel_l2_dist(&reference).expect("same shape");
        println!("  {:<15} rel-L2 vs reference = {dist:.2e}", imp.name());
        assert!(dist < 1e-3);
    }

    // --- 3. Advice: the paper's practitioner guidance, computed. ---
    println!();
    for (label, scenario) in [
        ("fastest", Scenario::Speed),
        ("leanest", Scenario::Memory),
        ("fastest within 1 GB", Scenario::SpeedWithinMemory(1 << 30)),
    ] {
        if let Some(a) = advise(&cfg, scenario, &dev) {
            println!(
                "{label:<20} → {} ({:.1} ms, {:.0} MB)",
                a.implementation,
                a.time_ms,
                a.peak_bytes as f64 / (1024.0 * 1024.0)
            );
        }
    }
}
