//! Profile a real CNN model layer by layer — the paper's hotspot-layer
//! analysis (Fig. 2) with per-layer detail.
//!
//! ```sh
//! cargo run --release --example model_profiling [alexnet|vgg|googlenet|overfeat|lenet]
//! ```

#![forbid(unsafe_code)]

use gcnn_frameworks::cudnn::CuDnn;
use gcnn_gpusim::DeviceSpec;
use gcnn_models::layer::InstanceKind;
use gcnn_models::{alexnet, googlenet, lenet5, model_breakdown, overfeat, vgg16};

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "alexnet".into());
    let model = match which.to_ascii_lowercase().as_str() {
        "alexnet" => alexnet(),
        "vgg" => vgg16(),
        "googlenet" => googlenet(),
        "overfeat" => overfeat(),
        "lenet" => lenet5(),
        other => {
            eprintln!("unknown model '{other}'; expected alexnet|vgg|googlenet|overfeat|lenet");
            std::process::exit(2);
        }
    };

    let batch = 32;
    let dev = DeviceSpec::k40c();
    let b = model_breakdown(&model, batch, &CuDnn, &dev);

    println!(
        "{} — modeled training iteration at batch {batch} on {} (conv via cuDNN)\n",
        b.model, dev.name
    );
    println!(
        "{:<34} {:>8} {:>9} {:>7}",
        "layer", "kind", "time ms", "share"
    );
    println!("{}", "-".repeat(62));
    let total = b.total_ms();
    for row in &b.rows {
        // Skip sub-millisecond rows in the detail listing to keep the
        // table readable for GoogLeNet's 80+ instances.
        if row.time_ms < total / 500.0 {
            continue;
        }
        println!(
            "{:<34} {:>8} {:>9.2} {:>6.1}%",
            row.name,
            format!("{:?}", row.kind),
            row.time_ms,
            100.0 * row.time_ms / total
        );
    }

    println!("\nby layer type:");
    for kind in [
        InstanceKind::Conv,
        InstanceKind::Pool,
        InstanceKind::Relu,
        InstanceKind::Fc,
        InstanceKind::Concat,
        InstanceKind::Softmax,
    ] {
        let share = b.share(kind);
        if share > 0.0 {
            println!("  {:<8} {:>5.1}%", format!("{kind:?}"), 100.0 * share);
        }
    }
    println!("\ntotal: {total:.1} ms per iteration");
    println!(
        "convolution dominates ({:.0}%), as the paper's Fig. 2 reports (86–94%).",
        100.0 * b.share(InstanceKind::Conv)
    );
}
