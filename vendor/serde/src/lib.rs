//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The real serde models serialization through a visitor (`Serializer`)
//! so one `Serialize` impl can target many formats. This workspace only
//! ever serializes to JSON (via `serde_json::to_string_pretty`), so the
//! stand-in collapses the data model to a single method that appends
//! compact JSON to a `String`. `serde_json` then re-parses and
//! pretty-prints it, which keeps the output format identical in spirit
//! to the real pipeline.
//!
//! `Deserialize` is a marker: the workspace derives it for API symmetry
//! but only ever *parses* into `serde_json::Value`, never into typed
//! structs.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A value that can render itself as compact JSON.
pub trait Serialize {
    /// Append this value's JSON encoding to `out`.
    fn write_json(&self, out: &mut String);
}

/// Marker for types whose derive requests deserialization support.
pub trait Deserialize {}

/// Escape and append a JSON string literal.
pub fn write_json_str(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                out.push_str(itoa_buf(&mut [0u8; 24], *self as i128));
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Integer formatting without going through `format!` (keeps the hot
/// serialization path allocation-light).
fn itoa_buf(buf: &mut [u8; 24], mut v: i128) -> &str {
    let neg = v < 0;
    if neg {
        v = -v;
    }
    let mut i = buf.len();
    loop {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
        if v == 0 {
            break;
        }
    }
    if neg {
        i -= 1;
        buf[i] = b'-';
    }
    std::str::from_utf8(&buf[i..]).expect("ascii digits")
}

macro_rules! impl_serialize_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn write_json(&self, out: &mut String) {
                if self.is_finite() {
                    // Rust's Display prints the shortest round-trip
                    // representation, same contract as serde_json's ryu.
                    out.push_str(&format!("{self}"));
                } else {
                    // serde_json maps NaN/±inf to null.
                    out.push_str("null");
                }
            }
        }
        impl Deserialize for $t {}
    )*};
}

impl_serialize_float!(f32, f64);

impl Serialize for bool {
    fn write_json(&self, out: &mut String) {
        out.push_str(if *self { "true" } else { "false" });
    }
}
impl Deserialize for bool {}

impl Serialize for str {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}

impl Serialize for String {
    fn write_json(&self, out: &mut String) {
        write_json_str(self, out);
    }
}
impl Deserialize for String {}

impl Serialize for char {
    fn write_json(&self, out: &mut String) {
        let mut tmp = [0u8; 4];
        write_json_str(self.encode_utf8(&mut tmp), out);
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn write_json(&self, out: &mut String) {
        (**self).write_json(out);
    }
}

impl<T: Serialize> Serialize for [T] {
    fn write_json(&self, out: &mut String) {
        out.push('[');
        for (i, v) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            v.write_json(out);
        }
        out.push(']');
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}
impl<T> Deserialize for Vec<T> {}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn write_json(&self, out: &mut String) {
        self.as_slice().write_json(out);
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn write_json(&self, out: &mut String) {
        match self {
            Some(v) => v.write_json(out),
            None => out.push_str("null"),
        }
    }
}
impl<T> Deserialize for Option<T> {}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn write_json(&self, out: &mut String) {
                out.push('[');
                let mut first = true;
                $(
                    if !first {
                        out.push(',');
                    }
                    first = false;
                    self.$idx.write_json(out);
                )+
                let _ = first;
                out.push(']');
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<K: AsRef<str>, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn write_json(&self, out: &mut String) {
        out.push('{');
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            write_json_str(k.as_ref(), out);
            out.push(':');
            v.write_json(out);
        }
        out.push('}');
    }
}

#[cfg(test)]
mod tests {
    use super::Serialize;

    fn render<T: Serialize + ?Sized>(v: &T) -> String {
        let mut s = String::new();
        v.write_json(&mut s);
        s
    }

    #[test]
    fn scalars() {
        assert_eq!(render(&42u64), "42");
        assert_eq!(render(&-7i32), "-7");
        assert_eq!(render(&true), "true");
        assert_eq!(render(&1.5f32), "1.5");
        assert_eq!(render(&f32::NAN), "null");
        assert_eq!(render("a\"b"), "\"a\\\"b\"");
    }

    #[test]
    fn containers() {
        assert_eq!(render(&vec![1u32, 2, 3]), "[1,2,3]");
        assert_eq!(render(&Some(5u8)), "5");
        assert_eq!(render(&Option::<u8>::None), "null");
        assert_eq!(render(&("ab".to_string(), 3u64)), "[\"ab\",3]");
    }
}
