//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! vendored serde stand-in.
//!
//! The registry (and therefore `syn`/`quote`) is unreachable in this
//! build environment, so the item grammar is parsed directly off the
//! `proc_macro` token stream. Supported shapes — which cover every
//! derive site in the workspace — are:
//!
//! * unit / tuple / named-field structs (with optional generics),
//! * enums whose variants are unit, tuple or struct-like,
//! * `pub` / `pub(...)` visibilities, attributes and doc comments
//!   (skipped), and explicit enum discriminants (skipped).
//!
//! JSON encoding follows serde's externally-tagged default:
//! unit variant → `"Name"`, newtype variant → `{"Name": value}`,
//! tuple variant → `{"Name":[..]}`, struct variant → `{"Name":{..}}`.
//! `#[serde(...)]` attributes are not supported and there are none in
//! the workspace.

#![forbid(unsafe_code)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

#[derive(Debug)]
enum Body {
    Struct(Fields),
    Enum(Vec<(String, Fields)>),
}

#[derive(Debug)]
struct Item {
    name: String,
    /// Parameter declarations for the `impl<...>` list (bounds added by
    /// the caller for type params).
    params: Vec<String>,
    /// Bare parameter names for the `Name<...>` type arguments.
    args: Vec<String>,
    /// Which params are type params (as opposed to lifetimes/consts).
    type_params: Vec<String>,
    body: Body,
}

/// Derive the vendored `serde::Serialize` (compact-JSON writer).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = serialize_body(&item.body);
    let (impl_generics, ty_generics) = generics_strings(&item, true);
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Serialize for {}{ty_generics} {{\n\
             fn write_json(&self, __out: &mut ::std::string::String) {{\n{body}\n}}\n\
         }}",
        item.name
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derive the vendored `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let (impl_generics, ty_generics) = generics_strings(&item, false);
    format!(
        "#[automatically_derived]\n\
         impl{impl_generics} ::serde::Deserialize for {}{ty_generics} {{}}",
        item.name
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

/// Render `impl<...>` and `<...>` generic lists. When `bound` is set,
/// every type parameter gets a `::serde::Serialize` bound appended.
fn generics_strings(item: &Item, bound: bool) -> (String, String) {
    if item.params.is_empty() {
        return (String::new(), String::new());
    }
    let decls: Vec<String> = item
        .params
        .iter()
        .zip(&item.args)
        .map(|(decl, arg)| {
            if bound && item.type_params.contains(arg) {
                if decl.contains(':') {
                    format!("{decl} + ::serde::Serialize")
                } else {
                    format!("{decl}: ::serde::Serialize")
                }
            } else {
                decl.clone()
            }
        })
        .collect();
    (
        format!("<{}>", decls.join(", ")),
        format!("<{}>", item.args.join(", ")),
    )
}

fn serialize_body(body: &Body) -> String {
    // Generated code writes through `__out` and binds variant fields as
    // `__f_<name>` so that user field names (e.g. a field called `out`)
    // can never shadow the writer.
    match body {
        Body::Struct(Fields::Unit) => "__out.push_str(\"null\");".to_string(),
        Body::Struct(Fields::Tuple(1)) => {
            "::serde::Serialize::write_json(&self.0, __out);".to_string()
        }
        Body::Struct(Fields::Tuple(n)) => {
            let mut s = String::from("__out.push('[');\n");
            for i in 0..*n {
                if i > 0 {
                    s.push_str("__out.push(',');\n");
                }
                s.push_str(&format!(
                    "::serde::Serialize::write_json(&self.{i}, __out);\n"
                ));
            }
            s.push_str("__out.push(']');");
            s
        }
        Body::Struct(Fields::Named(names)) => {
            let mut s = String::from("__out.push('{');\n");
            for (i, name) in names.iter().enumerate() {
                if i > 0 {
                    s.push_str("__out.push(',');\n");
                }
                s.push_str(&format!(
                    "__out.push_str(\"\\\"{name}\\\":\");\n\
                     ::serde::Serialize::write_json(&self.{name}, __out);\n"
                ));
            }
            s.push_str("__out.push('}');");
            s
        }
        Body::Enum(variants) => {
            if variants.is_empty() {
                return "match *self {}".to_string();
            }
            let mut s = String::from("match self {\n");
            for (vname, fields) in variants {
                match fields {
                    Fields::Unit => {
                        s.push_str(&format!(
                            "Self::{vname} => __out.push_str(\"\\\"{vname}\\\"\"),\n"
                        ));
                    }
                    Fields::Tuple(1) => {
                        s.push_str(&format!(
                            "Self::{vname}(__f0) => {{\n\
                               __out.push_str(\"{{\\\"{vname}\\\":\");\n\
                               ::serde::Serialize::write_json(__f0, __out);\n\
                               __out.push('}}');\n\
                             }}\n"
                        ));
                    }
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let mut arm = format!(
                            "Self::{vname}({}) => {{\n\
                               __out.push_str(\"{{\\\"{vname}\\\":[\");\n",
                            binds.join(", ")
                        );
                        for (i, b) in binds.iter().enumerate() {
                            if i > 0 {
                                arm.push_str("__out.push(',');\n");
                            }
                            arm.push_str(&format!("::serde::Serialize::write_json({b}, __out);\n"));
                        }
                        arm.push_str("__out.push(']');\n__out.push('}');\n}\n");
                        s.push_str(&arm);
                    }
                    Fields::Named(names) => {
                        let binds: Vec<String> =
                            names.iter().map(|f| format!("{f}: __f_{f}")).collect();
                        let mut arm = format!(
                            "Self::{vname} {{ {} }} => {{\n\
                               __out.push_str(\"{{\\\"{vname}\\\":{{\");\n",
                            binds.join(", ")
                        );
                        for (i, fname) in names.iter().enumerate() {
                            if i > 0 {
                                arm.push_str("__out.push(',');\n");
                            }
                            arm.push_str(&format!(
                                "__out.push_str(\"\\\"{fname}\\\":\");\n\
                                 ::serde::Serialize::write_json(__f_{fname}, __out);\n"
                            ));
                        }
                        arm.push_str("__out.push('}');\n__out.push('}');\n}\n");
                        s.push_str(&arm);
                    }
                }
            }
            s.push('}');
            s
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0usize;
    skip_attrs_and_vis(&toks, &mut i);

    let kind = ident_at(&toks, &mut i);
    assert!(
        kind == "struct" || kind == "enum",
        "derive target must be a struct or enum, got `{kind}`"
    );
    let name = ident_at(&toks, &mut i);

    let (params, args, type_params) = parse_generics(&toks, &mut i);

    // Find the body: a brace group (named struct / enum), a paren group
    // followed by `;` (tuple struct), or a bare `;` (unit struct).
    // `where` clauses would sit between the generics and the body; none
    // exist in the workspace and none of their tokens are groups that
    // could be confused with a body here.
    let mut body = Body::Struct(Fields::Unit);
    while i < toks.len() {
        match &toks[i] {
            TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                body = if kind == "enum" {
                    Body::Enum(parse_variants(&inner))
                } else {
                    Body::Struct(Fields::Named(parse_named_fields(&inner)))
                };
                break;
            }
            TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                body = Body::Struct(Fields::Tuple(count_tuple_fields(&inner)));
                break;
            }
            TokenTree::Punct(p) if p.as_char() == ';' => break,
            _ => i += 1,
        }
    }

    Item {
        name,
        params,
        args,
        type_params,
        body,
    }
}

fn skip_attrs_and_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => *i += 2, // `#` + bracket group
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1; // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }
}

fn ident_at(toks: &[TokenTree], i: &mut usize) -> String {
    match &toks[*i] {
        TokenTree::Ident(id) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, got `{other}`"),
    }
}

/// Parse an optional `<...>` generic parameter list starting at `i`.
/// Returns (param declarations, bare argument names, type-param names).
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> (Vec<String>, Vec<String>, Vec<String>) {
    let (mut params, mut args, mut type_params) = (Vec::new(), Vec::new(), Vec::new());
    if !matches!(toks.get(*i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return (params, args, type_params);
    }
    *i += 1;
    let mut depth = 1usize;
    let mut current: Vec<TokenTree> = Vec::new();
    while *i < toks.len() {
        let t = toks[*i].clone();
        *i += 1;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
                current.push(t);
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                flush_param(&mut current, &mut params, &mut args, &mut type_params);
            }
            _ => current.push(t),
        }
    }
    flush_param(&mut current, &mut params, &mut args, &mut type_params);
    (params, args, type_params)
}

fn flush_param(
    current: &mut Vec<TokenTree>,
    params: &mut Vec<String>,
    args: &mut Vec<String>,
    type_params: &mut Vec<String>,
) {
    if current.is_empty() {
        return;
    }
    let decl: TokenStream = current.drain(..).collect();
    let decl_toks: Vec<TokenTree> = decl.clone().into_iter().collect();
    let decl_str = decl.to_string();

    // The bare name is the leading lifetime/ident (skipping `const`).
    let mut j = 0;
    let mut is_lifetime = false;
    let mut is_const = false;
    if let Some(TokenTree::Punct(p)) = decl_toks.get(j) {
        if p.as_char() == '\'' {
            is_lifetime = true;
        }
    }
    if let Some(TokenTree::Ident(id)) = decl_toks.get(j) {
        if id.to_string() == "const" {
            is_const = true;
            j += 1;
        }
    }
    let arg = if is_lifetime {
        match &decl_toks[1] {
            TokenTree::Ident(id) => format!("'{id}"),
            other => panic!("expected lifetime name, got `{other}`"),
        }
    } else {
        match &decl_toks[j] {
            TokenTree::Ident(id) => id.to_string(),
            other => panic!("expected parameter name, got `{other}`"),
        }
    };
    if !is_lifetime && !is_const {
        type_params.push(arg.clone());
    }
    params.push(decl_str);
    args.push(arg);
}

/// Parse `name: Type, ...` named-field lists, returning the names.
fn parse_named_fields(toks: &[TokenTree]) -> Vec<String> {
    let mut names = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        names.push(ident_at(toks, &mut i));
        // Skip `: Type` up to the next top-level comma.
        skip_to_field_end(toks, &mut i);
    }
    names
}

/// Count the fields of a tuple struct / tuple variant.
fn count_tuple_fields(toks: &[TokenTree]) -> usize {
    let mut count = 0usize;
    let mut i = 0usize;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        count += 1;
        skip_to_field_end(toks, &mut i);
    }
    count
}

/// Advance past the current field's type (or discriminant), leaving `i`
/// just after the separating comma. Tracks `<...>` nesting so commas
/// inside generics don't split fields.
fn skip_to_field_end(toks: &[TokenTree], i: &mut usize) {
    let mut angle = 0usize;
    while *i < toks.len() {
        match &toks[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && angle > 0 => angle -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

/// Parse enum variants: `Name`, `Name(T, ..)`, `Name { f: T, .. }`,
/// each optionally followed by `= discriminant`.
fn parse_variants(toks: &[TokenTree]) -> Vec<(String, Fields)> {
    let mut variants = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        skip_attrs_and_vis(toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = ident_at(toks, &mut i);
        let fields = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Tuple(count_tuple_fields(&inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                i += 1;
                Fields::Named(parse_named_fields(&inner))
            }
            _ => Fields::Unit,
        };
        // Skip optional `= discriminant` through the trailing comma.
        skip_to_field_end(toks, &mut i);
        variants.push((name, fields));
    }
    variants
}
