//! Offline stand-in for the subset of `rand` 0.8 this workspace uses:
//! `SmallRng::seed_from_u64(..)` plus `Rng::gen_range(lo..hi)` on `f32`
//! and the unsigned integer types.
//!
//! The generator is **splitmix64** (Steele et al., "Fast splittable
//! pseudorandom number generators", OOPSLA 2014) — a well-distributed
//! 64-bit stream that passes BigCrush when used this way and is the same
//! algorithm real `rand` uses to expand `seed_from_u64` seeds. Sequences
//! differ from real `rand`'s (the workspace only relies on determinism
//! per seed, not on specific sequences).

#![forbid(unsafe_code)]

/// Core random source: 64 bits at a time.
pub trait RngCore {
    /// Next raw 64-bit value.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit value.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable constructors; mirrors `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, the `R` bound of [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
    /// True when the range contains no values.
    fn is_empty(&self) -> bool;
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        // 24 random mantissa bits → uniform in [0, 1), scaled to the range.
        let unit = (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32);
        self.start + unit * (self.end - self.start)
    }
    fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
    fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is < 2^-32 for the spans used here.
                self.start + (rng.next_u64() % span) as $t
            }
            fn is_empty(&self) -> bool {
                self.start >= self.end
            }
        }
    )*};
}

impl_sample_range_uint!(usize, u64, u32, u16, u8);

/// Convenience sampling methods; mirrors `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform draw from `range` (e.g. `rng.gen_range(0..10)`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "gen_range: empty range");
        range.sample(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_range(0.0f64..1.0) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

pub mod rngs {
    //! Concrete generators.
    use super::{RngCore, SeedableRng};

    /// Small, fast generator (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng { state: seed }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Alias kept for API compatibility with `rand::rngs::StdRng`.
    pub type StdRng = SmallRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_range_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&x));
        }
    }

    #[test]
    fn usize_range_covers_values() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn mean_is_centered() {
        let mut rng = SmallRng::seed_from_u64(3);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen_range(0.0f64..1.0)).sum();
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }
}
