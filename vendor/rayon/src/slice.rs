//! Slice entry points (`par_iter`, `par_chunks_mut`, …) for the
//! sequential rayon shim.

use crate::iter::ParIter;

/// Shared-slice parallel views; mirrors `rayon::slice::ParallelSlice`
/// plus the `par_iter` entry point from `IntoParallelRefIterator`.
pub trait ParallelSlice<T: Sync> {
    /// Iterate elements by reference.
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>>;
    /// Iterate non-overlapping chunks of `chunk_size` (last may be short).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<std::slice::Iter<'_, T>> {
        ParIter::from_inner(self.iter())
    }
    fn par_chunks(&self, chunk_size: usize) -> ParIter<std::slice::Chunks<'_, T>> {
        ParIter::from_inner(self.chunks(chunk_size))
    }
}

/// Mutable-slice parallel views; mirrors `rayon::slice::ParallelSliceMut`
/// plus the `par_iter_mut` entry point from `IntoParallelRefMutIterator`.
pub trait ParallelSliceMut<T: Send> {
    /// Iterate elements by mutable reference.
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>>;
    /// Iterate non-overlapping mutable chunks of `chunk_size`.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_iter_mut(&mut self) -> ParIter<std::slice::IterMut<'_, T>> {
        ParIter::from_inner(self.iter_mut())
    }
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<std::slice::ChunksMut<'_, T>> {
        ParIter::from_inner(self.chunks_mut(chunk_size))
    }
}
