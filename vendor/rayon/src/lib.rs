//! Offline stand-in for the subset of the `rayon` API this workspace uses.
//!
//! The build environment has no network access and no crate registry, so
//! the real `rayon` cannot be fetched. This crate keeps the call sites
//! source-compatible (`par_iter`, `par_chunks_mut`, `into_par_iter`,
//! `ThreadPoolBuilder`, …) while executing everything **sequentially** on
//! the calling thread. On the single-core container this project targets,
//! that is also the fastest correct schedule: there is no second core for
//! real worker threads to run on, so a pool would only add overhead.
//!
//! Semantics preserved relative to real rayon:
//! * adapter chains produce identical results (ordering is deterministic,
//!   which real rayon also guarantees for indexed iterators),
//! * `fold` yields per-"thread" partial accumulators that `reduce`
//!   combines (here: exactly one partial),
//! * `ThreadPool::install` scopes a thread-count visible through
//!   [`current_num_threads`], so code that branches on pool size behaves
//!   as if a pool of that size existed.

#![forbid(unsafe_code)]

use std::cell::Cell;
use std::fmt;

pub mod iter;
pub mod slice;

pub mod prelude {
    //! Glob-import target mirroring `rayon::prelude`.
    pub use crate::iter::{IndexedParallelIterator, IntoParallelIterator, ParallelIterator};
    pub use crate::slice::{ParallelSlice, ParallelSliceMut};
}

thread_local! {
    static POOL_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Number of threads the "current pool" advertises. Outside any
/// [`ThreadPool::install`] scope this reports 1 (the calling thread).
pub fn current_num_threads() -> usize {
    let n = POOL_THREADS.with(Cell::get);
    if n == 0 {
        1
    } else {
        n
    }
}

/// Builder mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Start a fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Request an advertised pool width (0 = automatic, i.e. 1 here).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Build the pool. Never fails in the sequential stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: if self.num_threads == 0 {
                1
            } else {
                self.num_threads
            },
        })
    }
}

/// Error type kept for signature compatibility; never constructed.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Scoped "pool": runs closures on the calling thread while advertising
/// the configured width through [`current_num_threads`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Advertised width of this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Execute `op` "inside" the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = POOL_THREADS.with(|c| c.replace(self.num_threads));
        struct Restore(usize);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }
}

/// Run two closures and return both results (sequentially, left first).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn install_scopes_thread_count() {
        assert_eq!(current_num_threads(), 1);
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 4);
        assert_eq!(current_num_threads(), 1);
    }

    #[test]
    fn chained_adapters_match_sequential() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10).map(|x| x * 2).collect::<Vec<_>>());

        let s: usize = (0..100usize)
            .into_par_iter()
            .fold(|| 0usize, |a, x| a + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(s, 4950);
    }

    #[test]
    fn slice_chunks_and_zip() {
        let mut c = [0i32; 6];
        let src = [1i32, 2, 3, 4, 5, 6];
        c.par_chunks_mut(2)
            .zip(src.par_chunks(2))
            .for_each(|(dst, s)| dst.copy_from_slice(s));
        assert_eq!(c, src);

        let dots: Vec<i32> = src
            .par_iter()
            .zip(src.as_slice())
            .map(|(&a, &b)| a * b)
            .collect();
        assert_eq!(dots, vec![1, 4, 9, 16, 25, 36]);
    }
}
