//! Sequential parallel-iterator shim.
//!
//! [`ParIter`] wraps a plain [`Iterator`] and exposes the rayon adapter
//! vocabulary the workspace uses. Conversion entry points live on the
//! [`IntoParallelIterator`] trait so that `use rayon::prelude::*` enables
//! `(0..n).into_par_iter()`, `vec.into_par_iter()` and zipping against
//! plain slices, exactly as with the real crate.

/// A "parallel" iterator: a thin wrapper over a sequential iterator.
#[derive(Debug, Clone)]
pub struct ParIter<I> {
    inner: I,
}

impl<I: Iterator> ParIter<I> {
    pub(crate) fn from_inner(inner: I) -> Self {
        ParIter { inner }
    }
}

/// Conversion into a [`ParIter`]; mirrors `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Underlying sequential iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Item the iterator yields.
    type Item;
    /// Wrap `self` as a (sequential) parallel iterator.
    fn into_par_iter(self) -> ParIter<Self::Iter>;
}

impl<I: Iterator> IntoParallelIterator for ParIter<I> {
    type Iter = I;
    type Item = I::Item;
    fn into_par_iter(self) -> ParIter<I> {
        self
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = std::ops::Range<usize>;
    type Item = usize;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl IntoParallelIterator for std::ops::Range<u32> {
    type Iter = std::ops::Range<u32>;
    type Item = u32;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self }
    }
}

impl<T> IntoParallelIterator for Vec<T> {
    type Iter = std::vec::IntoIter<T>;
    type Item = T;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.into_iter(),
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = std::slice::Iter<'a, T>;
    type Item = &'a T;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter { inner: self.iter() }
    }
}

impl<'a, T: Send> IntoParallelIterator for &'a mut [T] {
    type Iter = std::slice::IterMut<'a, T>;
    type Item = &'a mut T;
    fn into_par_iter(self) -> ParIter<Self::Iter> {
        ParIter {
            inner: self.iter_mut(),
        }
    }
}

/// Marker matching rayon's trait of the same name; adapters here live
/// directly on [`ParIter`], so the trait only needs to exist for
/// `use rayon::prelude::*` compatibility.
pub trait ParallelIterator {}
impl<I: Iterator> ParallelIterator for ParIter<I> {}

/// Marker for indexed iterators (length-aware in real rayon).
pub trait IndexedParallelIterator {}
impl<I: ExactSizeIterator> IndexedParallelIterator for ParIter<I> {}

impl<I: Iterator> ParIter<I> {
    /// Apply `map_op` to every element.
    pub fn map<F, R>(self, map_op: F) -> ParIter<std::iter::Map<I, F>>
    where
        F: FnMut(I::Item) -> R,
    {
        ParIter {
            inner: self.inner.map(map_op),
        }
    }

    /// Keep elements for which `pred` holds.
    pub fn filter<F>(self, pred: F) -> ParIter<std::iter::Filter<I, F>>
    where
        F: FnMut(&I::Item) -> bool,
    {
        ParIter {
            inner: self.inner.filter(pred),
        }
    }

    /// Pair each element with its index.
    pub fn enumerate(self) -> ParIter<std::iter::Enumerate<I>> {
        ParIter {
            inner: self.inner.enumerate(),
        }
    }

    /// Keep only the first `n` elements.
    pub fn take(self, n: usize) -> ParIter<std::iter::Take<I>> {
        ParIter {
            inner: self.inner.take(n),
        }
    }

    /// Zip with anything convertible to a parallel iterator (slices,
    /// ranges, other [`ParIter`]s).
    pub fn zip<Z>(self, other: Z) -> ParIter<std::iter::Zip<I, Z::Iter>>
    where
        Z: IntoParallelIterator,
    {
        ParIter {
            inner: self.inner.zip(other.into_par_iter().inner),
        }
    }

    /// Hint for minimum work-splitting granularity; a no-op here.
    pub fn with_min_len(self, _min: usize) -> Self {
        self
    }

    /// Run `op` on every element.
    pub fn for_each<F>(self, op: F)
    where
        F: FnMut(I::Item),
    {
        self.inner.for_each(op);
    }

    /// Per-thread fold: seeds one accumulator per worker with `identity`
    /// and folds items into it. Sequentially there is exactly one worker,
    /// so this yields a single accumulated value to `reduce`.
    pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> ParIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        ParIter {
            inner: std::iter::once(self.inner.fold(identity(), fold_op)),
        }
    }

    /// Combine all elements, starting from `identity()`.
    pub fn reduce<ID, OP>(self, identity: ID, op: OP) -> I::Item
    where
        ID: Fn() -> I::Item,
        OP: FnMut(I::Item, I::Item) -> I::Item,
    {
        self.inner.fold(identity(), op)
    }

    /// Collect into any [`FromIterator`] container.
    pub fn collect<C>(self) -> C
    where
        C: FromIterator<I::Item>,
    {
        self.inner.collect()
    }

    /// Sum of all elements.
    pub fn sum<S>(self) -> S
    where
        S: std::iter::Sum<I::Item>,
    {
        self.inner.sum()
    }

    /// Number of elements.
    pub fn count(self) -> usize {
        self.inner.count()
    }

    /// Maximum element, if any.
    pub fn max(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.max()
    }

    /// Minimum element, if any.
    pub fn min(self) -> Option<I::Item>
    where
        I::Item: Ord,
    {
        self.inner.min()
    }
}
