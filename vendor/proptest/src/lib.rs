//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Runs each property over `cases` deterministically-seeded random
//! inputs (seed derived from the test name, so failures reproduce).
//! Differences from real proptest, acceptable for an offline build:
//! no shrinking (a failing case reports its assertion message only),
//! no persistence file, and value distributions are plain uniforms.

#![forbid(unsafe_code)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Glob-import target mirroring `proptest::prelude`.
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Define property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion helper for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr)) => {};
    (@cfg($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg_pat:pat in $arg_strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg_pat =
                            $crate::strategy::Strategy::sample_value(&($arg_strat), &mut __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __result {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("proptest `{}` case {}/{}: {}",
                               stringify!($name), __case + 1, __config.cases, msg);
                    }
                }
            }
        }
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
}

/// Assert inside a property; failure fails the current case with the
/// formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            left
        );
    }};
}

/// Discard the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond),
            ));
        }
    };
}

/// Uniform choice between strategies (optionally weighted; weights are
/// honored proportionally).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..10, y in -1.5f32..2.5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-1.5..2.5).contains(&y));
        }

        /// Tuple strategies, flat-map and Just compose.
        #[test]
        fn composition((n, k) in (1usize..8).prop_flat_map(|n| (Just(n), 0usize..8))) {
            prop_assert!(n < 8 && k < 8);
        }

        #[test]
        fn mapped_vec_lengths(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }

        #[test]
        fn oneof_and_filter(b in prop_oneof![Just(8u32), Just(16)],
                            odd in (0u32..100).prop_filter("odd", |x| x % 2 == 1)) {
            prop_assert!(b == 8 || b == 16);
            prop_assert_eq!(odd % 2, 1);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        for _ in 0..50 {
            assert_eq!(
                (0usize..1000).sample_value(&mut a),
                (0usize..1000).sample_value(&mut b)
            );
        }
    }
}
