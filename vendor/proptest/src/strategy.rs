//! Strategies: composable random-value generators.

use crate::test_runner::TestRng;
use std::rc::Rc;

/// A generator of random values, composable through `prop_map`-style
/// adapters. Object-safe via [`Strategy::sample_value`]; the adapters
/// are `Self: Sized`.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, map }
    }

    /// Generate a value, then a dependent strategy from it.
    fn prop_flat_map<S, F>(self, flat: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, flat }
    }

    /// Reject values failing `filter` (resamples up to a bounded number
    /// of attempts, then panics — mirrors proptest giving up on a
    /// too-strict filter).
    fn prop_filter<F>(self, whence: impl Into<String>, filter: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            filter,
        }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Strategy that always yields a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample_value(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.sample_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    flat: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn sample_value(&self, rng: &mut TestRng) -> T::Value {
        (self.flat)(self.inner.sample_value(rng)).sample_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    filter: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample_value(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample_value(rng);
            if (self.filter)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive samples",
            self.whence
        );
    }
}

/// Type-erased strategy handle.
#[derive(Clone)]
pub struct BoxedStrategy<V> {
    inner: Rc<dyn Strategy<Value = V>>,
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        self.inner.sample_value(rng)
    }
}

impl<V> std::fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// Weighted union of strategies; backs `prop_oneof!`.
pub struct Union<V> {
    options: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    /// Build from `(weight, strategy)` pairs.
    pub fn new(options: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { options, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn sample_value(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.options {
            if pick < u64::from(*w) {
                return s.sample_value(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weight bookkeeping")
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy; mirrors `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary {
    /// Strategy type returned by [`Arbitrary::arbitrary`].
    type Strategy: Strategy<Value = Self>;
    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Strategy over a type's full value domain via a sampling function.
pub struct FnStrategy<T> {
    sample: fn(&mut TestRng) -> T,
}

impl<T> Strategy for FnStrategy<T> {
    type Value = T;
    fn sample_value(&self, rng: &mut TestRng) -> T {
        (self.sample)(rng)
    }
}

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;
    fn arbitrary() -> Self::Strategy {
        FnStrategy {
            sample: |rng| rng.next_u64() & 1 == 1,
        }
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = FnStrategy<$t>;
            fn arbitrary() -> Self::Strategy {
                FnStrategy { sample: |rng| rng.next_u64() as $t }
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_int {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = self.end().abs_diff(*self.start()) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span + 1) as $t)
            }
        }
    )*};
}

impl_range_strategy_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_strategy_float {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + rng.unit_f64() as $t * (self.end - self.start)
            }
        }
    )*};
}

impl_range_strategy_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)] // macro binds tuple fields to their type-parameter names
            fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}
