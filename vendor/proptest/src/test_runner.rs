//! Configuration, RNG and error plumbing for the proptest stand-in.

/// Per-block configuration; only `cases` is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; 64 keeps the single-core CI
        // budget sane while still exploring the input space.
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(&'static str),
    /// `prop_assert!` failed; the property is falsified.
    Fail(String),
}

/// Deterministic splitmix64 stream seeded from the test's full path.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed from a name (FNV-1a hash), so every test gets a stable,
    /// distinct stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
