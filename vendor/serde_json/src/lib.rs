//! Offline stand-in for the subset of `serde_json` this workspace uses:
//! [`to_string`] / [`to_string_pretty`] over the vendored `serde`
//! trait, [`from_str`] into a dynamic [`Value`], and the `Value`
//! accessors / index / comparison operators the tests exercise.

#![forbid(unsafe_code)]

use std::collections::BTreeMap;
use std::fmt;

/// Dynamically-typed JSON value. Objects preserve no insertion order
/// (BTreeMap), which the workspace never relies on.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (stored as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// Borrow as an array, if this is one.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as an object map, if this is one.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// Integer value, if this is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// True if this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field by key, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|o| o.get(key))
    }
}

static NULL: Value = Value::Null;

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_f64() == Some(*other as f64)
    }
}

impl PartialEq<i32> for Value {
    fn eq(&self, other: &i32) -> bool {
        self.as_f64() == Some(f64::from(*other))
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        matches!(self, Value::Bool(b) if b == other)
    }
}

impl serde::Serialize for Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => serde::Serialize::write_json(n, out),
            Value::String(s) => serde::write_json_str(s, out),
            Value::Array(a) => {
                out.push('[');
                for (i, v) in a.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write_json(out);
                }
                out.push(']');
            }
            Value::Object(o) => {
                out.push('{');
                for (i, (k, v)) in o.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    serde::write_json_str(k, out);
                    out.push(':');
                    v.write_json(out);
                }
                out.push('}');
            }
        }
    }
}

/// Error from [`from_str`] (or, nominally, serialization — which cannot
/// fail in this stand-in).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.offset, self.msg)
    }
}

impl std::error::Error for Error {}

/// Serialize `value` to compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut s = String::new();
    value.write_json(&mut s);
    Ok(s)
}

/// Serialize `value` to human-readable, 2-space-indented JSON (the same
/// layout real serde_json produces).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let compact = to_string(value)?;
    let parsed = from_str(&compact)?;
    let mut out = String::with_capacity(compact.len() * 2);
    pretty(&parsed, 0, &mut out);
    Ok(out)
}

fn pretty(v: &Value, indent: usize, out: &mut String) {
    const STEP: usize = 2;
    match v {
        Value::Array(a) if !a.is_empty() => {
            out.push_str("[\n");
            for (i, item) in a.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + STEP);
                pretty(item, indent + STEP, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(o) if !o.is_empty() => {
            out.push_str("{\n");
            for (i, (k, item)) in o.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + STEP);
                serde::write_json_str(k, out);
                out.push_str(": ");
                pretty(item, indent + STEP, out);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => {
            let mut s = String::new();
            serde::Serialize::write_json(other, &mut s);
            out.push_str(&s);
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push(' ');
    }
}

/// Parse a JSON document into a [`Value`].
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error {
            msg: msg.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected `{lit}`")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 4 >= self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogate pairs are not produced by our
                            // serializer; map lone surrogates to U+FFFD.
                            s.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_index() {
        let v = from_str(r#"[{"name":"sgemm","dur":1500.0,"flags":[true,null]}]"#).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 1);
        assert_eq!(arr[0]["name"], "sgemm");
        assert_eq!(arr[0]["dur"], 1500.0);
        assert!(arr[0]["flags"][1].is_null());
        assert_eq!(arr[0]["missing"], Value::Null);
    }

    #[test]
    fn pretty_parses_back() {
        let v = from_str(r#"{"a":[1,2],"b":{"c":"x\ny"},"d":[]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n"));
        assert_eq!(from_str(&pretty).unwrap(), v);
    }

    #[test]
    fn numbers() {
        assert_eq!(from_str("-12.5e2").unwrap(), Value::Number(-1250.0));
        assert_eq!(from_str("42").unwrap().as_u64(), Some(42));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{\"a\":}").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("1 2").is_err());
    }
}
