//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! Keeps the bench sources compiling and runnable (`cargo bench`) with
//! a plain wall-clock harness: each benchmark runs `sample_size`
//! timed samples after one warm-up iteration and prints mean/min/max
//! per-iteration times. No statistical analysis, HTML reports or
//! comparison baselines — the workspace's tracked numbers come from the
//! `perf_smoke` binary instead.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Measurement configuration and sink; mirrors `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\ngroup: {name}");
        BenchmarkGroup {
            _parent: self,
            sample_size: 10,
        }
    }

    /// Run a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, 10, f);
        self
    }

    /// Flush results; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark (min 2 here).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declare throughput for reporting; recorded but unused.
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Soft cap on total measurement time; a no-op here.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<I, F>(&mut self, id: I, f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into_benchmark_id(), self.sample_size, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, T, F>(&mut self, id: I, input: &T, mut f: F) -> &mut Self
    where
        I: IntoBenchmarkId,
        F: FnMut(&mut Bencher, &T),
    {
        run_benchmark(&id.into_benchmark_id(), self.sample_size, |b| f(b, input));
        self
    }

    /// End the group.
    pub fn finish(self) {}
}

fn run_benchmark<F>(name: &str, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        iters: Vec::with_capacity(samples + 1),
    };
    // Warm-up sample, then the timed ones.
    for _ in 0..=samples {
        f(&mut bencher);
    }
    if bencher.iters.is_empty() {
        println!("  {name}: no measurements");
        return;
    }
    let timed = if bencher.iters.len() > 1 {
        &bencher.iters[1..]
    } else {
        &bencher.iters[..]
    };
    let mean = timed.iter().sum::<Duration>() / timed.len() as u32;
    let min = timed.iter().min().copied().unwrap_or_default();
    let max = timed.iter().max().copied().unwrap_or_default();
    println!(
        "  {name}: mean {mean:?}  min {min:?}  max {max:?}  ({} samples)",
        timed.len()
    );
}

/// Passed to benchmark closures to time the measured body.
#[derive(Debug)]
pub struct Bencher {
    iters: Vec<Duration>,
}

impl Bencher {
    /// Time one execution of `body`.
    pub fn iter<O, F>(&mut self, mut body: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        let out = body();
        self.iters.push(start.elapsed());
        drop(black_box(out));
    }
}

/// Benchmark identifier; mirrors `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new<P: Display>(name: &str, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion of `&str` / `String` / [`BenchmarkId`] into a printable id.
pub trait IntoBenchmarkId {
    /// Render the identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared work per iteration, for throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements (or FLOPs) processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the collected groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_times() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
                black_box(runs)
            })
        });
        group.finish();
        assert_eq!(runs, 4); // 3 samples + 1 warm-up
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }
}
