//! End-to-end training: LeNet-5 (the paper's Fig. 1 walkthrough
//! architecture) learns a synthetic digit task with real numerics under
//! every convolution strategy.

use gcnn_conv::Strategy;
use gcnn_models::data::synthetic_digits;
use gcnn_models::Network;

fn train_with(strategy: Strategy) -> (Vec<f32>, f32) {
    let classes = 4;
    let size = 16;
    let train = synthetic_digits(128, size, classes, 100);
    let test = synthetic_digits(48, size, classes, 101);
    let mut net = Network::lenet5(size, classes, strategy, 7);
    net.learning_rate = 0.15;
    let report = net.train(&train, &test, 32, 6);
    (report.epoch_losses, report.test_accuracy)
}

#[test]
fn unrolling_strategy_learns() {
    let (losses, acc) = train_with(Strategy::Unrolling);
    assert!(
        losses.last().unwrap() < &(0.75 * losses[0]),
        "loss did not decrease: {losses:?}"
    );
    assert!(acc > 0.5, "accuracy {acc} (chance 0.25)");
}

#[test]
fn direct_strategy_learns() {
    let (losses, acc) = train_with(Strategy::Direct);
    assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn fft_strategy_learns() {
    let (losses, acc) = train_with(Strategy::Fft);
    assert!(losses.last().unwrap() < &losses[0], "{losses:?}");
    assert!(acc > 0.5, "accuracy {acc}");
}

#[test]
fn strategies_agree_after_one_step() {
    // One SGD step from identical weights must leave the networks in
    // (numerically) the same state regardless of strategy: predictions
    // afterwards agree.
    let classes = 3;
    let size = 16;
    let data = synthetic_digits(16, size, classes, 55);
    let (imgs, labels) = data.batch(0, 16);

    let mut nets: Vec<Network> = [Strategy::Direct, Strategy::Unrolling, Strategy::Fft]
        .into_iter()
        .map(|s| Network::lenet5(size, classes, s, 77))
        .collect();
    let losses: Vec<f32> = nets
        .iter_mut()
        .map(|n| n.train_batch(&imgs, &labels))
        .collect();
    for w in losses.windows(2) {
        assert!(
            (w[0] - w[1]).abs() < 1e-3,
            "initial losses diverge: {losses:?}"
        );
    }

    let probe = synthetic_digits(8, size, classes, 56).images;
    let logits: Vec<_> = nets.iter().map(|n| n.forward(&probe)).collect();
    for other in &logits[1..] {
        let dist = logits[0].rel_l2_dist(other).unwrap();
        assert!(dist < 1e-2, "post-step logits diverge: rel l2 {dist}");
    }
}
