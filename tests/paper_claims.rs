//! End-to-end reproduction of the paper's headline claims through the
//! public API — the "shapes" EXPERIMENTS.md reports, enforced in CI.
//!
//! Each test names the paper section/figure it pins down.

use gcnn_conv::{table1_configs, ConvConfig};
use gcnn_core::sweep::{paper_sweeps, SweepAxis};
use gcnn_core::{memory_comparison, runtime_comparison, transfer_overheads};
use gcnn_frameworks::{all_implementations, implementation_by_name};
use gcnn_gpusim::DeviceSpec;

fn dev() -> DeviceSpec {
    DeviceSpec::k40c()
}

fn sweep(axis: SweepAxis) -> gcnn_core::Sweep {
    paper_sweeps().into_iter().find(|s| s.axis == axis).unwrap()
}

/// §IV-B / Fig. 3a–b: "The runtime clearly presents the advantage of
/// fbfft over other implementations (from 1.4× to 9.7×) in all given
/// mini-batch and input sizes, while Theano-fft results in the slowest
/// speed."
#[test]
fn fig3_fbfft_dominates_batch_and_input_sweeps() {
    for axis in [SweepAxis::Batch, SweepAxis::Input] {
        let t = runtime_comparison(&sweep(axis), &dev());
        for p in 0..t.values.len() {
            let (winner, t_win) = t.winner_at(p).unwrap();
            assert_eq!(winner, "fbfft", "{axis:?} = {}", t.values[p]);

            // Slowest supported implementation is Theano-fft.
            let mut slowest = ("", 0.0f64);
            for name in &t.implementations {
                if let Some(tm) = t.time_of(p, name) {
                    if tm > slowest.1 {
                        slowest = (name, tm);
                    }
                }
            }
            assert_eq!(slowest.0, "Theano-fft", "{axis:?} = {}", t.values[p]);

            // Speedup band: generous envelope around the paper's
            // 1.4–9.7×.
            let ratio = slowest.1 / t_win;
            assert!(
                (1.4..=30.0).contains(&ratio),
                "{axis:?} = {}: extreme ratio {ratio:.1}",
                t.values[p]
            );
        }
    }
}

/// §IV-B / Fig. 3c: fbfft leads the filter sweep (1.19–5.1×), and
/// "Theano-CorrMM slightly outperforms [cuDNN] with large filter
/// numbers (greater than 160)".
#[test]
fn fig3c_filter_sweep_shapes() {
    let t = runtime_comparison(&sweep(SweepAxis::Filters), &dev());
    for (p, &f) in t.values.iter().enumerate() {
        assert_eq!(t.winner_at(p).unwrap().0, "fbfft", "f = {f}");
        let cudnn = t.time_of(p, "cuDNN").unwrap();
        let corrmm = t.time_of(p, "Theano-CorrMM").unwrap();
        if f > 160 && f % 128 != 0 {
            assert!(
                corrmm < cudnn,
                "f = {f}: CorrMM {corrmm:.1} should beat cuDNN {cudnn:.1}"
            );
        }
        if f <= 144 {
            assert!(
                cudnn < corrmm,
                "f = {f}: cuDNN {cudnn:.1} should beat CorrMM {corrmm:.1}"
            );
        }
    }
}

/// §IV-B / Fig. 3d: "For small kernels (smaller than 7), cuDNN
/// outperforms fbfft. Otherwise, fbfft is faster than cuDNN", with
/// fbfft's runtime flat in k.
#[test]
fn fig3d_kernel_crossover_and_flatness() {
    let t = runtime_comparison(&sweep(SweepAxis::Kernel), &dev());
    let mut fbfft_times = Vec::new();
    for (p, &k) in t.values.iter().enumerate() {
        let cudnn = t.time_of(p, "cuDNN").unwrap();
        let fbfft = t.time_of(p, "fbfft").unwrap();
        fbfft_times.push(fbfft);
        if k < 7 {
            assert!(cudnn < fbfft, "k = {k}");
        } else {
            assert!(fbfft < cudnn, "k = {k}");
        }
    }
    let min = fbfft_times.iter().cloned().fold(f64::MAX, f64::min);
    let max = fbfft_times.iter().cloned().fold(0.0, f64::max);
    assert!(max / min < 1.2, "fbfft not flat in k: {min:.1}–{max:.1} ms");
}

/// §IV-B / Fig. 3e: "fbfft outperforms other implementations when
/// stride is size of 1. […] For greater stride, cuDNN results in the
/// best performance", with the FFT pair unsupported beyond stride 1.
#[test]
fn fig3e_stride_restrictions() {
    let t = runtime_comparison(&sweep(SweepAxis::Stride), &dev());
    for (p, &s) in t.values.iter().enumerate() {
        if s == 1 {
            assert_eq!(t.winner_at(p).unwrap().0, "fbfft");
        } else {
            assert!(t.time_of(p, "fbfft").is_none(), "stride {s}");
            assert!(t.time_of(p, "Theano-fft").is_none(), "stride {s}");
            assert_eq!(t.winner_at(p).unwrap().0, "cuDNN", "stride {s}");
        }
    }
}

/// §IV-B: "cuda-convnet2 performs well only for certain cases, such as
/// for mini-batch sizes of multiple of 128."
#[test]
fn fig3a_cc2_batch_dips() {
    let t = runtime_comparison(&sweep(SweepAxis::Batch), &dev());
    let per_image = |b: usize| {
        let p = t.values.iter().position(|&v| v == b).unwrap();
        t.time_of(p, "cuda-convnet2").unwrap() / b as f64
    };
    for &sweet in &[128usize, 256, 384, 512] {
        for &sour in &[sweet - 32, sweet + 32] {
            if t.values.contains(&sour) {
                assert!(
                    per_image(sweet) < per_image(sour),
                    "cc2 per-image time at {sweet} should beat {sour}"
                );
            }
        }
    }
}

/// §V-B / Fig. 5: cuda-convnet2 most frugal, fbfft the hungriest
/// (followed by Theano-fft), and "Torch-cunn is the overall most memory
/// efficient implementation in unrolling-based convolution".
#[test]
fn fig5_memory_ordering() {
    for axis in [SweepAxis::Batch, SweepAxis::Input, SweepAxis::Filters] {
        let t = memory_comparison(&sweep(axis));
        for p in 0..t.values.len() {
            let m = |name: &str| t.mb_of(p, name);
            let cc2 = m("cuda-convnet2");
            let fb = m("fbfft").unwrap();
            if let Some(cc2) = cc2 {
                for other in [
                    "Caffe",
                    "cuDNN",
                    "Torch-cunn",
                    "Theano-CorrMM",
                    "Theano-fft",
                    "fbfft",
                ] {
                    if let Some(o) = m(other) {
                        assert!(cc2 <= o, "{axis:?}[{p}]: cc2 {cc2:.0} > {other} {o:.0}");
                    }
                }
            }
            // fbfft above Theano-fft, except the tiny-input corner
            // where Theano's i+k−1 cuFFT padding exceeds fbfft's
            // next_pow2(i) transform (documented in EXPERIMENTS.md).
            let theano = m("Theano-fft").unwrap();
            if fb < theano {
                let cfg = sweep(axis).config_at(t.values[p]);
                assert!(
                    cfg.input + cfg.kernel - 1 > cfg.input.next_power_of_two(),
                    "{axis:?}[{p}]: fbfft {fb:.0} < Theano-fft {theano:.0} outside the padding corner"
                );
            }
            let torch = m("Torch-cunn").unwrap();
            for unroller in ["Caffe", "cuDNN", "Theano-CorrMM"] {
                assert!(
                    torch <= m(unroller).unwrap(),
                    "{axis:?}[{p}]: Torch vs {unroller}"
                );
            }
        }
    }
}

/// §V-D / Fig. 7: transfer-overhead tiers, including the Theano-CorrMM
/// Conv2 anomaly.
#[test]
fn fig7_transfer_tiers() {
    let rows = transfer_overheads(&dev());
    let max_of = |name: &str| {
        rows.iter()
            .find(|r| r.implementation == name)
            .unwrap()
            .max_fraction()
    };
    for hidden in ["Caffe", "cuDNN", "fbfft"] {
        assert!(max_of(hidden) < 0.01, "{hidden}: {}", max_of(hidden));
    }
    for modest in ["Torch-cunn", "cuda-convnet2", "Theano-fft"] {
        let f = max_of(modest);
        assert!((0.005..=0.20).contains(&f), "{modest}: {f}");
    }
    let corrmm = rows
        .iter()
        .find(|r| r.implementation == "Theano-CorrMM")
        .unwrap();
    assert!(corrmm.at("Conv2").unwrap() > 0.5);
}

/// fbfft's runtime over the input sweep is a power-of-two staircase:
/// constant within a transform band, jumping across band edges — the
/// runtime counterpart of Fig. 5b's memory fluctuation.
#[test]
fn fbfft_runtime_staircase_over_input() {
    let t = runtime_comparison(&sweep(SweepAxis::Input), &dev());
    let at = |i: usize| {
        let p = t.values.iter().position(|&v| v == i).unwrap();
        t.time_of(p, "fbfft").unwrap()
    };
    // Flat inside the N = 128 band (i = 80 … 128)…
    let ratio_flat = at(128) / at(80);
    assert!(
        (0.95..=1.05).contains(&ratio_flat),
        "in-band ratio {ratio_flat}"
    );
    // …with a jump crossing into the N = 256 band.
    let jump = at(144) / at(128);
    assert!(jump > 2.0, "band-edge jump only ×{jump:.2}");
}

/// Table I shapes are exactly the paper's.
#[test]
fn table1_is_faithful() {
    let expected = [
        (128, 128, 96, 11, 1),
        (128, 128, 96, 3, 1),
        (128, 32, 128, 9, 1),
        (128, 16, 128, 7, 1),
        (128, 13, 384, 3, 1),
    ];
    for (cfg, (b, i, f, k, s)) in table1_configs().iter().zip(expected) {
        assert_eq!(
            (cfg.batch, cfg.input, cfg.filters, cfg.kernel, cfg.stride),
            (b, i, f, k, s)
        );
    }
}

/// fbfft crossover structure (§IV-B, and the fbfft paper's own claim):
/// the FFT strategy pays a kernel-size-independent transform cost and
/// amortizes it over the mini-batch, so against im2col+GEMM
/// (Theano-CorrMM) it wins only above a batch threshold — and that
/// threshold shrinks as the kernel grows, vanishing once the k² GEMM
/// work dominates at every batch size.
#[test]
fn fbfft_vs_corrmm_batch_threshold_crossover() {
    let fbfft = implementation_by_name("fbfft").unwrap();
    let corrmm = implementation_by_name("Theano-CorrMM").unwrap();
    let time = |imp: &dyn gcnn_frameworks::ConvImplementation, cfg: &ConvConfig| {
        imp.plan(cfg).execute(&dev(), 1).unwrap().total_ms()
    };
    let batches = [1usize, 2, 4, 8, 16, 32, 64, 128];

    let mut prev_threshold = batches.len(); // index of first fbfft win
    for k in [3usize, 5, 7, 9, 11] {
        let wins: Vec<bool> = batches
            .iter()
            .map(|&b| {
                let cfg = ConvConfig::from_tuple(b, 64, 64, k, 1);
                time(fbfft.as_ref(), &cfg) < time(corrmm.as_ref(), &cfg)
            })
            .collect();
        // Single crossover in b: once fbfft wins it keeps winning (the
        // transform cost is amortized, never un-amortized).
        let threshold = wins.iter().position(|&w| w).unwrap_or(batches.len());
        assert!(
            wins[threshold..].iter().all(|&w| w),
            "k = {k}: fbfft win set not upward-closed in batch: {wins:?}"
        );
        // The threshold is non-increasing in kernel size.
        assert!(
            threshold <= prev_threshold,
            "k = {k}: batch threshold {threshold} grew past {prev_threshold}"
        );
        prev_threshold = threshold;

        if k == 3 {
            // Small kernel: im2col+GEMM holds the small-batch regime…
            assert!(!wins[0], "k = 3, b = 1: fbfft should lose");
            // …and the FFT strategy needs a real batch to win at all.
            assert!(
                (1..batches.len()).contains(&threshold),
                "k = 3: expected an interior batch threshold, got {threshold}"
            );
        }
        if k >= 9 {
            // Large kernel: the k² GEMM cost dominates at every batch.
            assert!(
                wins.iter().all(|&w| w),
                "k = {k}: fbfft should win at every batch size: {wins:?}"
            );
        }
    }
}

/// §VI: "No single implementation is the best for all scenarios" — the
/// winner genuinely changes across the parameter space.
#[test]
fn no_single_winner() {
    let mut winners = std::collections::HashSet::new();
    let cases = [
        ConvConfig::from_tuple(64, 128, 64, 11, 1),
        ConvConfig::from_tuple(64, 128, 64, 3, 1),
        ConvConfig::from_tuple(64, 128, 64, 11, 2),
    ];
    for cfg in cases {
        let mut best: Option<(String, f64)> = None;
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() {
                continue;
            }
            let t = imp.plan(&cfg).execute(&dev(), 1).unwrap().total_ms();
            if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                best = Some((imp.name().to_string(), t));
            }
        }
        winners.insert(best.unwrap().0);
    }
    assert!(winners.len() >= 2, "winners: {winners:?}");
}

/// The paper measures averages over 10 iterations; the model must be
/// linear in iterations (determinism + steady state).
#[test]
fn iterations_scale_linearly() {
    let imp = implementation_by_name("cuDNN").unwrap();
    let cfg = ConvConfig::paper_base();
    let one = imp.plan(&cfg).execute(&dev(), 1).unwrap();
    let ten = imp.plan(&cfg).execute(&dev(), 10).unwrap();
    assert!((ten.kernel_ms / one.kernel_ms - 10.0).abs() < 1e-6);
    assert_eq!(one.peak_mem_bytes, ten.peak_mem_bytes);
}
