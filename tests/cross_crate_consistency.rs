//! Cross-crate consistency: the framework models, the analysis harness
//! and the numeric substrates must tell one coherent story.

use gcnn_autotune::{Direction, Policy, SimSubstrate, Tuner, TuningCache};
use gcnn_conv::{reference, ConvConfig};
use gcnn_core::{advise, Scenario};
use gcnn_frameworks::all_implementations;
use gcnn_gpusim::DeviceSpec;
use gcnn_tensor::init::uniform_tensor;
use proptest::prelude::*;

/// Every framework's real algorithm agrees with the reference
/// convolution on arbitrary supported shapes.
#[test]
fn all_frameworks_numerically_correct_on_assorted_shapes() {
    let shapes = [
        ConvConfig::with_channels(32, 1, 9, 16, 3, 1),
        ConvConfig::with_channels(32, 4, 12, 16, 5, 1),
        ConvConfig::with_channels(64, 2, 7, 16, 2, 1),
        ConvConfig::with_channels(32, 3, 10, 32, 4, 2), // stride 2: FFT opts out
    ];
    for cfg in shapes {
        let x = uniform_tensor(cfg.input_shape(), -1.0, 1.0, 500);
        let w = uniform_tensor(cfg.filter_shape(), -1.0, 1.0, 501);
        let want = reference::forward_ref(&cfg, &x, &w);
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() {
                continue;
            }
            let got = imp.algorithm().forward(&cfg, &x, &w);
            let dist = got.rel_l2_dist(&want).unwrap();
            assert!(dist < 1e-3, "{} at {cfg}: rel l2 {dist}", imp.name());
        }
    }
}

/// The advisor's verdict always matches a brute-force scan of the
/// comparison machinery.
#[test]
fn advisor_matches_brute_force() {
    let dev = DeviceSpec::k40c();
    for cfg in [
        ConvConfig::from_tuple(64, 128, 64, 11, 1),
        ConvConfig::from_tuple(64, 128, 64, 5, 1),
        ConvConfig::from_tuple(96, 64, 128, 9, 1),
    ] {
        let advice = advise(&cfg, Scenario::Speed, &dev).unwrap();
        let mut best: Option<(String, f64)> = None;
        for imp in all_implementations() {
            if imp.supports(&cfg).is_err() {
                continue;
            }
            if let Ok(r) = imp.plan(&cfg).execute(&dev, 1) {
                let t = r.total_ms();
                if best.as_ref().map(|(_, bt)| t < *bt).unwrap_or(true) {
                    best = Some((imp.name().to_string(), t));
                }
            }
        }
        assert_eq!(advice.implementation, best.unwrap().0, "at {cfg}");
    }
}

/// Measurement-driven tuning on the simulator substrate recovers the
/// advisor's analytic verdict on every Table I configuration: both
/// rank candidates by the same modeled cost, so `Policy::Measure` and
/// `Scenario::Speed` must name the same winner.
#[test]
fn autotune_measure_agrees_with_advisor_on_table1() {
    let dev = DeviceSpec::k40c();
    let sub = SimSubstrate::k40c();
    let tuner = Tuner::new(Policy::Measure);
    let mut cache = TuningCache::new();
    for cfg in gcnn_conv::config::table1_configs() {
        let advice = advise(&cfg, Scenario::Speed, &dev).unwrap();
        let sel = tuner
            .select(&sub, &mut cache, &cfg, Direction::Training)
            .unwrap();
        assert_eq!(sel.implementation, advice.implementation, "at {cfg}");
    }
}

/// Plans are internally consistent: peak bytes equals the sum of
/// allocations, FLOPs are positive for real work, and the memory
/// scenario's pick is never slower to OOM.
#[test]
fn plans_are_internally_consistent() {
    let cfg = ConvConfig::paper_base();
    for imp in all_implementations() {
        let plan = imp.plan(&cfg);
        let sum: u64 = plan.allocations.iter().map(|(_, b)| *b).sum();
        assert_eq!(plan.peak_bytes(), sum, "{}", imp.name());
        assert!(plan.total_flops() > 0, "{}", imp.name());
        assert!(!plan.kernels.is_empty(), "{}", imp.name());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Modeled runtime is monotone in batch size for every
    /// implementation (more images, more work — the model must never
    /// predict a free lunch beyond tile-boundary effects, which is why
    /// we compare across full 128-image tile multiples).
    #[test]
    fn runtime_monotone_in_whole_tile_batches(mult in 1usize..4) {
        let dev = DeviceSpec::k40c();
        let small = ConvConfig::from_tuple(128 * mult, 64, 32, 7, 1);
        let large = ConvConfig::from_tuple(128 * (mult + 1), 64, 32, 7, 1);
        for imp in all_implementations() {
            if imp.supports(&small).is_err() || imp.supports(&large).is_err() {
                continue;
            }
            let t_small = imp.plan(&small).execute(&dev, 1).map(|r| r.total_ms());
            let t_large = imp.plan(&large).execute(&dev, 1).map(|r| r.total_ms());
            if let (Ok(ts), Ok(tl)) = (t_small, t_large) {
                prop_assert!(tl > ts, "{}: {ts} ≥ {tl}", imp.name());
            }
        }
    }

    /// Peak memory is monotone in input size within one FFT padding
    /// band and across bands.
    #[test]
    fn memory_monotone_in_batch(b1 in 1usize..8, extra in 1usize..8) {
        let b2 = b1 + extra;
        let cfg1 = ConvConfig::from_tuple(32 * b1, 64, 32, 7, 1);
        let cfg2 = ConvConfig::from_tuple(32 * b2, 64, 32, 7, 1);
        for imp in all_implementations() {
            if imp.supports(&cfg1).is_err() || imp.supports(&cfg2).is_err() {
                continue;
            }
            prop_assert!(
                imp.plan(&cfg2).peak_bytes() >= imp.plan(&cfg1).peak_bytes(),
                "{}",
                imp.name()
            );
        }
    }
}
